// Sparse CSR graph backend: construction invariants, dense-vs-sparse
// equivalence (forward + gradients) for all propagation strategies, edge
// cases, and --graph_backend / RTGCN_GRAPH_BACKEND dispatch.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "baselines/rsr.h"
#include "core/rtgcn.h"
#include "graph/adjacency.h"
#include "graph/gat.h"
#include "graph/sparse.h"
#include "graph_checker.h"
#include "obs/registry.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace rtgcn {
namespace {

// 4 stocks: triangle 0-1-2 with multi-hot types, stock 3 isolated.
graph::RelationTensor MakeTriangle() {
  graph::RelationTensor rel(4, 3);
  rel.AddRelation(0, 1, 0).Abort();
  rel.AddRelation(0, 1, 2).Abort();
  rel.AddRelation(1, 2, 1).Abort();
  rel.AddRelation(0, 2, 0).Abort();
  return rel;
}

graph::RelationTensor RandomRelations(int64_t n, int64_t k, int64_t edges,
                                      Rng* rng) {
  graph::RelationTensor rel(n, k);
  for (int64_t e = 0; e < edges; ++e) {
    const int64_t i = static_cast<int64_t>(rng->UniformInt(n));
    const int64_t j = static_cast<int64_t>(rng->UniformInt(n));
    if (i == j) continue;
    rel.AddRelation(i, j, static_cast<int64_t>(rng->UniformInt(k))).Abort();
  }
  return rel;
}

int64_t EntryIndex(const graph::CsrGraph& g, int64_t i, int64_t j) {
  for (int64_t e = g.row_ptr()[i]; e < g.row_ptr()[i + 1]; ++e) {
    if (g.col()[e] == j) return e;
  }
  return -1;
}

std::vector<int32_t> EntryTypes(const graph::CsrGraph& g, int64_t e) {
  return std::vector<int32_t>(g.types().begin() + g.type_ptr()[e],
                              g.types().begin() + g.type_ptr()[e + 1]);
}

// ---------------------------------------------------------------------------
// CSR construction
// ---------------------------------------------------------------------------

TEST(CsrGraphTest, NormalizedAdjacencyLayout) {
  const graph::RelationTensor rel = MakeTriangle();
  graph::CsrPtr g = graph::CsrGraph::NormalizedAdjacency(rel);
  EXPECT_EQ(g->num_nodes(), 4);
  EXPECT_EQ(g->num_relation_types(), 3);
  EXPECT_EQ(g->num_undirected_edges(), 3);
  EXPECT_TRUE(g->has_self_loops());
  // Rows 0..2 hold {self, 2 neighbors}; the isolated row 3 only its self
  // loop: 3 + 3 + 3 + 1 directed entries.
  EXPECT_EQ(g->num_entries(), 10);
  EXPECT_EQ(g->row_ptr(), (std::vector<int64_t>{0, 3, 6, 9, 10}));
  EXPECT_EQ(g->col(), (std::vector<int32_t>{0, 1, 2, 0, 1, 2, 0, 1, 2, 3}));
  // deg~ (incl. self loop) is 3 for the triangle nodes, 1 for the isolated
  // node, so every triangle coefficient is 1/3 and the isolated self loop 1.
  for (int64_t e = 0; e < 9; ++e) {
    EXPECT_FLOAT_EQ(g->coeff()[e], 1.0f / 3.0f) << "entry " << e;
  }
  EXPECT_FLOAT_EQ(g->coeff()[9], 1.0f);
  EXPECT_GT(g->ApproxBytes(), 0u);
}

TEST(CsrGraphTest, ReverseEntryIsAnInvolution) {
  Rng rng(3);
  const graph::RelationTensor rel = RandomRelations(30, 4, 120, &rng);
  graph::CsrPtr g = graph::CsrGraph::NormalizedAdjacency(rel);
  for (int64_t e = 0; e < g->num_entries(); ++e) {
    const int64_t r = g->reverse_entry()[e];
    EXPECT_EQ(g->reverse_entry()[r], e);
    EXPECT_EQ(g->col()[r], g->row_of()[e]);
    EXPECT_EQ(g->row_of()[r], g->col()[e]);
    if (g->IsSelf(e)) {
      EXPECT_EQ(r, e);  // self loops map to themselves
    }
  }
}

TEST(CsrGraphTest, TypeListsMatchRelationTensor) {
  const graph::RelationTensor rel = MakeTriangle();
  graph::CsrPtr g = graph::CsrGraph::NormalizedAdjacency(rel);
  EXPECT_EQ(EntryTypes(*g, EntryIndex(*g, 0, 1)),
            (std::vector<int32_t>{0, 2}));
  EXPECT_EQ(EntryTypes(*g, EntryIndex(*g, 1, 0)),
            (std::vector<int32_t>{0, 2}));
  EXPECT_EQ(EntryTypes(*g, EntryIndex(*g, 1, 2)), (std::vector<int32_t>{1}));
  EXPECT_EQ(EntryTypes(*g, EntryIndex(*g, 0, 2)), (std::vector<int32_t>{0}));
  // Self loops carry no relation types.
  EXPECT_TRUE(EntryTypes(*g, EntryIndex(*g, 3, 3)).empty());
  EXPECT_TRUE(EntryTypes(*g, EntryIndex(*g, 0, 0)).empty());
}

TEST(CsrGraphTest, DensifyCoeffMatchesDenseNormalizedAdjacency) {
  Rng rng(4);
  const graph::RelationTensor rel = RandomRelations(25, 3, 80, &rng);
  graph::CsrPtr g = graph::CsrGraph::NormalizedAdjacency(rel);
  GraphChecker checker;
  checker.ExpectClose(graph::NormalizedAdjacency(rel), g->DensifyCoeff(),
                      "DensifyCoeff vs dense Â");
}

TEST(CsrGraphTest, RowNormalizedAveragesNeighbors) {
  const graph::RelationTensor rel = MakeTriangle();
  graph::CsrPtr g = graph::CsrGraph::RowNormalized(rel);
  EXPECT_FALSE(g->has_self_loops());
  EXPECT_EQ(g->num_entries(), 6);  // triangle only; row 3 is empty
  EXPECT_EQ(g->row_ptr(), (std::vector<int64_t>{0, 2, 4, 6, 6}));
  for (int64_t e = 0; e < g->num_entries(); ++e) {
    EXPECT_FLOAT_EQ(g->coeff()[e], 0.5f);  // every triangle node has deg 2
  }
}

TEST(CsrGraphTest, UniformMaskHasUnitCoefficients) {
  const graph::RelationTensor rel = MakeTriangle();
  graph::CsrPtr g = graph::CsrGraph::UniformMask(rel, /*add_self_loops=*/true);
  EXPECT_EQ(g->num_entries(), 10);
  for (int64_t e = 0; e < g->num_entries(); ++e) {
    EXPECT_FLOAT_EQ(g->coeff()[e], 1.0f);
  }
}

TEST(CsrGraphTest, EmptyAndSingleStockGraphs) {
  graph::RelationTensor empty(3, 2);
  graph::CsrPtr g = graph::CsrGraph::NormalizedAdjacency(empty);
  EXPECT_EQ(g->num_entries(), 3);  // self loops only
  for (int64_t e = 0; e < 3; ++e) EXPECT_FLOAT_EQ(g->coeff()[e], 1.0f);
  EXPECT_EQ(graph::CsrGraph::RowNormalized(empty)->num_entries(), 0);

  graph::RelationTensor one(1, 1);
  graph::CsrPtr g1 = graph::CsrGraph::NormalizedAdjacency(one);
  EXPECT_EQ(g1->num_entries(), 1);
  EXPECT_FLOAT_EQ(g1->coeff()[0], 1.0f);
}

TEST(CsrGraphTest, CsrFootprintIsOrderEdgesNotNSquared) {
  Rng rng(5);
  const int64_t n = 400;
  const graph::RelationTensor rel = RandomRelations(n, 4, 800, &rng);
  graph::CsrPtr g = graph::CsrGraph::NormalizedAdjacency(rel);
  const size_t dense_mask_bytes = static_cast<size_t>(n) * n * sizeof(float);
  EXPECT_LT(g->ApproxBytes(), dense_mask_bytes / 4);
}

// ---------------------------------------------------------------------------
// Dense-vs-sparse op equivalence (forward + gradients)
// ---------------------------------------------------------------------------

TEST(SparseOpsTest, PropagateMatchesDense) {
  GraphChecker checker;
  Rng rng(11);
  const graph::RelationTensor rel = RandomRelations(40, 4, 160, &rng);
  const Tensor x0 = checker.Gaussian({40, 7});
  const Tensor cot = checker.Gaussian({40, 7});

  ag::VarPtr xd = ag::MakeVariable(x0.Clone(), /*requires_grad=*/true);
  ag::VarPtr yd =
      ag::MatMul(ag::Constant(graph::NormalizedAdjacency(rel)), xd);
  ag::Backward(ag::SumAll(ag::Mul(yd, ag::Constant(cot))));

  graph::CsrPtr g = graph::CsrGraph::NormalizedAdjacency(rel);
  ag::VarPtr xs = ag::MakeVariable(x0.Clone(), /*requires_grad=*/true);
  ag::VarPtr ys = graph::SparsePropagate(g, xs);
  ag::Backward(ag::SumAll(ag::Mul(ys, ag::Constant(cot))));

  checker.ExpectClose(yd->value, ys->value, "SparsePropagate forward");
  checker.ExpectClose(xd->grad, xs->grad, "SparsePropagate dx");
}

TEST(SparseOpsTest, PropagateOnEmptyGraphIsIdentity) {
  graph::RelationTensor rel(6, 2);  // no edges: Â = I
  graph::CsrPtr g = graph::CsrGraph::NormalizedAdjacency(rel);
  Rng rng(12);
  const Tensor x0 = RandomGaussian({6, 3}, 0, 1, &rng);
  ag::VarPtr y = graph::SparsePropagate(g, ag::Constant(x0));
  EXPECT_EQ(std::memcmp(y->value.data(), x0.data(),
                        sizeof(float) * x0.numel()),
            0);
}

TEST(SparseOpsTest, EdgeWeightPropagateMatchesDense) {
  GraphChecker checker;
  Rng rng(13);
  const graph::RelationTensor rel = RandomRelations(35, 5, 150, &rng);
  const Tensor x0 = checker.Gaussian({35, 6});
  const Tensor cot = checker.Gaussian({35, 6});
  const Tensor w0 = checker.Gaussian({5}, 1.0f, 0.1f);
  const Tensor b0 = checker.Gaussian({1}, 0.0f, 0.1f);

  ag::VarPtr wd = ag::MakeVariable(w0.Clone(), true);
  ag::VarPtr bd = ag::MakeVariable(b0.Clone(), true);
  ag::VarPtr xd = ag::MakeVariable(x0.Clone(), true);
  ag::VarPtr s = graph::RelationEdgeWeights(rel, wd, bd);
  ag::VarPtr pd =
      ag::Mul(ag::Constant(graph::NormalizedAdjacency(rel)), s);
  ag::VarPtr yd = ag::MatMul(pd, xd);
  ag::Backward(ag::SumAll(ag::Mul(yd, ag::Constant(cot))));

  graph::CsrPtr g = graph::CsrGraph::NormalizedAdjacency(rel);
  ag::VarPtr ws = ag::MakeVariable(w0.Clone(), true);
  ag::VarPtr bs = ag::MakeVariable(b0.Clone(), true);
  ag::VarPtr xs = ag::MakeVariable(x0.Clone(), true);
  Tensor edge_values;
  ag::VarPtr ys =
      graph::SparseEdgeWeightPropagate(g, ws, bs, xs, &edge_values);
  ag::Backward(ag::SumAll(ag::Mul(ys, ag::Constant(cot))));

  checker.ExpectClose(yd->value, ys->value, "EdgeWeight forward");
  checker.ExpectClose(wd->grad, ws->grad, "EdgeWeight dw");
  checker.ExpectClose(bd->grad, bs->grad, "EdgeWeight db");
  checker.ExpectClose(xd->grad, xs->grad, "EdgeWeight dx");
  // The saved per-entry values densify to the dense propagation matrix.
  ASSERT_EQ(edge_values.numel(), g->num_entries());
  checker.ExpectClose(pd->value, g->Densify(edge_values.data()),
                      "EdgeWeight saved P");
}

TEST(SparseOpsTest, RowNormalizedEdgeWeightMatchesDenseRsrAggregation) {
  GraphChecker checker;
  Rng rng(14);
  const graph::RelationTensor rel = RandomRelations(30, 4, 90, &rng);
  const int64_t n = rel.num_stocks();
  const Tensor e0 = checker.Gaussian({n, 8});
  const Tensor cot = checker.Gaussian({n, 8});
  const Tensor w0 = checker.Gaussian({4}, 1.0f, 0.1f);
  const Tensor b0 = checker.Gaussian({1}, 0.0f, 0.1f);

  // Dense reference: ē = D^{-1} (S ⊙ M) e exactly as rsr.cc's dense path.
  const Tensor mask = rel.DenseMask();
  Tensor degree_inv({n, 1});
  for (int64_t i = 0; i < n; ++i) {
    double deg = 0;
    for (int64_t j = 0; j < n; ++j) deg += mask.data()[i * n + j];
    degree_inv.data()[i] = deg > 0 ? static_cast<float>(1.0 / deg) : 0.0f;
  }
  ag::VarPtr wd = ag::MakeVariable(w0.Clone(), true);
  ag::VarPtr bd = ag::MakeVariable(b0.Clone(), true);
  ag::VarPtr ed = ag::MakeVariable(e0.Clone(), true);
  ag::VarPtr s = graph::RelationEdgeWeights(rel, wd, bd);
  ag::VarPtr masked = ag::Mul(s, ag::Constant(mask));
  ag::VarPtr yd =
      ag::Mul(ag::MatMul(masked, ed), ag::Constant(degree_inv));
  ag::Backward(ag::SumAll(ag::Mul(yd, ag::Constant(cot))));

  graph::CsrPtr g = graph::CsrGraph::RowNormalized(rel);
  ag::VarPtr ws = ag::MakeVariable(w0.Clone(), true);
  ag::VarPtr bs = ag::MakeVariable(b0.Clone(), true);
  ag::VarPtr es = ag::MakeVariable(e0.Clone(), true);
  ag::VarPtr ys = graph::SparseEdgeWeightPropagate(g, ws, bs, es);
  ag::Backward(ag::SumAll(ag::Mul(ys, ag::Constant(cot))));

  checker.ExpectClose(yd->value, ys->value, "RSR aggregation forward");
  checker.ExpectClose(wd->grad, ws->grad, "RSR aggregation dw");
  checker.ExpectClose(bd->grad, bs->grad, "RSR aggregation db");
  checker.ExpectClose(ed->grad, es->grad, "RSR aggregation de");
}

TEST(SparseOpsTest, TimeSensitivePropagateMatchesDense) {
  GraphChecker checker;
  checker.set_rtol(1e-4f).set_atol(1e-5f);
  Rng rng(15);
  const graph::RelationTensor rel = RandomRelations(25, 4, 100, &rng);
  const int64_t n = rel.num_stocks();
  const int64_t t_len = 5, d = 6;
  const Tensor x0 = checker.Uniform({t_len, n, d}, 0.9f, 1.1f);
  const Tensor cot = checker.Gaussian({t_len, n, d});
  const Tensor w0 = checker.Gaussian({4}, 1.0f, 0.1f);
  const Tensor b0 = checker.Gaussian({1}, 0.0f, 0.1f);

  // Dense reference: P(t) = Â ⊙ (X(t) X(t)ᵀ / √d) ⊙ S (rtgcn.cc Eq. 5).
  ag::VarPtr wd = ag::MakeVariable(w0.Clone(), true);
  ag::VarPtr bd = ag::MakeVariable(b0.Clone(), true);
  ag::VarPtr xd = ag::MakeVariable(x0.Clone(), true);
  ag::VarPtr s = graph::RelationEdgeWeights(rel, wd, bd);
  ag::VarPtr base = ag::Mul(ag::Constant(graph::NormalizedAdjacency(rel)), s);
  ag::VarPtr corr = ag::MulScalar(
      ag::BatchMatMul(xd, ag::Permute(xd, {0, 2, 1})),
      1.0f / std::sqrt(static_cast<float>(d)));
  ag::VarPtr pd = ag::Mul(corr, base);
  ag::VarPtr yd = ag::BatchMatMul(pd, xd);
  ag::Backward(ag::SumAll(ag::Mul(yd, ag::Constant(cot))));

  graph::CsrPtr g = graph::CsrGraph::NormalizedAdjacency(rel);
  ag::VarPtr ws = ag::MakeVariable(w0.Clone(), true);
  ag::VarPtr bs = ag::MakeVariable(b0.Clone(), true);
  ag::VarPtr xs = ag::MakeVariable(x0.Clone(), true);
  Tensor edge_values;
  ag::VarPtr ys =
      graph::SparseTimeSensitivePropagate(g, ws, bs, xs, &edge_values);
  ag::Backward(ag::SumAll(ag::Mul(ys, ag::Constant(cot))));

  checker.ExpectClose(yd->value, ys->value, "TimeSensitive forward");
  checker.ExpectClose(wd->grad, ws->grad, "TimeSensitive dw");
  checker.ExpectClose(bd->grad, bs->grad, "TimeSensitive db");
  checker.ExpectClose(xd->grad, xs->grad, "TimeSensitive dx");
  // Saved per-(t, entry) values densify to each dense P(t).
  ASSERT_EQ(edge_values.ndim(), 2);
  ASSERT_EQ(edge_values.dim(0), t_len);
  ASSERT_EQ(edge_values.dim(1), g->num_entries());
  for (int64_t t = 0; t < t_len; ++t) {
    Tensor pt({n, n});
    std::memcpy(pt.data(), pd->value.data() + t * n * n,
                sizeof(float) * n * n);
    checker.ExpectClose(
        pt, g->Densify(edge_values.data() + t * g->num_entries()),
        "TimeSensitive saved P(t=" + std::to_string(t) + ")");
  }
}

TEST(SparseOpsTest, GatAttentionMatchesDense) {
  GraphChecker checker;
  checker.set_rtol(1e-4f).set_atol(1e-5f);
  Rng rng(16);
  const graph::RelationTensor rel = RandomRelations(30, 3, 110, &rng);
  const int64_t n = rel.num_stocks(), f = 5;
  const Tensor src0 = checker.Gaussian({n, 1});
  const Tensor dst0 = checker.Gaussian({n, 1});
  const Tensor h0 = checker.Gaussian({n, f});
  const Tensor cot = checker.Gaussian({n, f});
  const float slope = 0.2f;

  // Dense reference: the gat.cc mask path with self loops.
  Tensor mask = rel.DenseMask();
  for (int64_t i = 0; i < n; ++i) mask.data()[i * n + i] = 1.0f;
  ag::VarPtr srcd = ag::MakeVariable(src0.Clone(), true);
  ag::VarPtr dstd = ag::MakeVariable(dst0.Clone(), true);
  ag::VarPtr hd = ag::MakeVariable(h0.Clone(), true);
  ag::VarPtr e = ag::LeakyRelu(ag::Add(srcd, ag::Transpose(dstd)), slope);
  ag::VarPtr alpha = graph::MaskedRowSoftmax(e, mask);
  ag::VarPtr yd = ag::MatMul(alpha, hd);
  ag::Backward(ag::SumAll(ag::Mul(yd, ag::Constant(cot))));

  graph::CsrPtr g = graph::CsrGraph::UniformMask(rel, /*add_self_loops=*/true);
  ag::VarPtr srcs = ag::MakeVariable(src0.Clone(), true);
  ag::VarPtr dsts = ag::MakeVariable(dst0.Clone(), true);
  ag::VarPtr hs = ag::MakeVariable(h0.Clone(), true);
  Tensor alpha_entries;
  ag::VarPtr ys =
      graph::SparseGatAttention(g, srcs, dsts, hs, slope, &alpha_entries);
  ag::Backward(ag::SumAll(ag::Mul(ys, ag::Constant(cot))));

  checker.ExpectClose(yd->value, ys->value, "GAT forward");
  checker.ExpectClose(srcd->grad, srcs->grad, "GAT dsrc");
  checker.ExpectClose(dstd->grad, dsts->grad, "GAT ddst");
  checker.ExpectClose(hd->grad, hs->grad, "GAT dh");
  ASSERT_EQ(alpha_entries.numel(), g->num_entries());
  checker.ExpectClose(alpha->value, g->Densify(alpha_entries.data()),
                      "GAT attention weights");
}

TEST(SparseOpsTest, GatEmptyRowsProduceZerosLikeDenseAllMasked) {
  GraphChecker checker;
  checker.set_rtol(1e-4f).set_atol(1e-5f);
  const graph::RelationTensor rel = MakeTriangle();  // stock 3 isolated
  const int64_t n = 4, f = 3;
  Rng rng(17);
  const Tensor src0 = RandomGaussian({n, 1}, 0, 1, &rng);
  const Tensor dst0 = RandomGaussian({n, 1}, 0, 1, &rng);
  const Tensor h0 = RandomGaussian({n, f}, 0, 1, &rng);

  // No self loops: row 3 has no unmasked entry at all.
  ag::VarPtr e = ag::LeakyRelu(
      ag::Add(ag::Constant(src0), ag::Transpose(ag::Constant(dst0))), 0.2f);
  ag::VarPtr alpha = graph::MaskedRowSoftmax(e, rel.DenseMask());
  ag::VarPtr yd = ag::MatMul(alpha, ag::Constant(h0));

  graph::CsrPtr g =
      graph::CsrGraph::UniformMask(rel, /*add_self_loops=*/false);
  ag::VarPtr ys = graph::SparseGatAttention(g, ag::Constant(src0),
                                            ag::Constant(dst0),
                                            ag::Constant(h0), 0.2f);
  checker.ExpectClose(yd->value, ys->value, "GAT empty-row forward");
  for (int64_t c = 0; c < f; ++c) {
    EXPECT_FLOAT_EQ(ys->value.data()[3 * f + c], 0.0f);
  }
}

// ---------------------------------------------------------------------------
// Numeric gradient checks on the sparse ops
// ---------------------------------------------------------------------------

TEST(SparseOpsTest, GradCheckEdgeWeightPropagate) {
  Rng rng(21);
  const graph::RelationTensor rel = RandomRelations(6, 3, 10, &rng);
  graph::CsrPtr g = graph::CsrGraph::NormalizedAdjacency(rel);
  auto w = ag::MakeVariable(RandomGaussian({3}, 1.0f, 0.1f, &rng), true);
  auto b = ag::MakeVariable(Tensor::Zeros({1}), true);
  auto x = ag::MakeVariable(RandomUniform({6, 4}, 0.9f, 1.1f, &rng), true);
  EXPECT_TRUE(ag::GradCheck(
      [&](const std::vector<ag::VarPtr>&) {
        return ag::SumAll(
            ag::Square(graph::SparseEdgeWeightPropagate(g, w, b, x)));
      },
      {w, b, x}));
}

TEST(SparseOpsTest, GradCheckTimeSensitivePropagate) {
  Rng rng(22);
  const graph::RelationTensor rel = RandomRelations(5, 3, 8, &rng);
  graph::CsrPtr g = graph::CsrGraph::NormalizedAdjacency(rel);
  auto w = ag::MakeVariable(RandomGaussian({3}, 1.0f, 0.1f, &rng), true);
  auto b = ag::MakeVariable(Tensor::Zeros({1}), true);
  auto x = ag::MakeVariable(RandomUniform({4, 5, 3}, 0.9f, 1.1f, &rng), true);
  EXPECT_TRUE(ag::GradCheck(
      [&](const std::vector<ag::VarPtr>&) {
        return ag::SumAll(
            ag::Square(graph::SparseTimeSensitivePropagate(g, w, b, x)));
      },
      {w, b, x}));
}

TEST(SparseOpsTest, GradCheckGatAttention) {
  Rng rng(23);
  const graph::RelationTensor rel = RandomRelations(6, 2, 10, &rng);
  graph::CsrPtr g = graph::CsrGraph::UniformMask(rel, /*add_self_loops=*/true);
  auto src = ag::MakeVariable(RandomGaussian({6, 1}, 0, 0.5f, &rng), true);
  auto dst = ag::MakeVariable(RandomGaussian({6, 1}, 0, 0.5f, &rng), true);
  auto h = ag::MakeVariable(RandomGaussian({6, 4}, 0, 1, &rng), true);
  EXPECT_TRUE(ag::GradCheck(
      [&](const std::vector<ag::VarPtr>&) {
        return ag::SumAll(
            ag::Square(graph::SparseGatAttention(g, src, dst, h, 0.2f)));
      },
      {src, dst, h}));
}

// ---------------------------------------------------------------------------
// Backend equivalence through the real model surfaces
// ---------------------------------------------------------------------------

TEST(GraphBackendEquivalenceTest, RtGcnModelAllStrategies) {
  GraphChecker checker;
  checker.set_rtol(2e-3f).set_atol(2e-4f);
  Rng rng(31);
  const graph::RelationTensor rel = RandomRelations(28, 5, 120, &rng);
  const Tensor x0 = checker.Uniform({8, 28, 4}, 0.9f, 1.1f);
  const Tensor cot = checker.Gaussian({28});
  for (core::Strategy strat :
       {core::Strategy::kUniform, core::Strategy::kWeight,
        core::Strategy::kTimeSensitive}) {
    checker.Check("RT-GCN (" + core::StrategyName(strat) + ")", [&]() {
      Rng mrng(77);
      core::RtGcnConfig cfg;
      cfg.strategy = strat;
      cfg.window = 8;
      cfg.num_features = 4;
      cfg.relational_filters = 6;
      cfg.temporal_stride = 2;
      cfg.dropout = 0.0f;
      core::RtGcnModel model(rel, cfg, &mrng);
      model.SetTraining(false);
      Rng fwd(7);
      ag::VarPtr scores = model.Forward(ag::Constant(x0), &fwd);
      ag::Backward(ag::SumAll(ag::Mul(scores, ag::Constant(cot))));
      std::vector<Tensor> out{scores->value,
                              model.last_propagation().Clone()};
      for (const auto& p : model.Parameters()) out.push_back(p->grad);
      return out;
    });
  }
}

TEST(GraphBackendEquivalenceTest, GatLayerForwardBackwardAndAttention) {
  GraphChecker checker;
  checker.set_rtol(1e-3f).set_atol(1e-4f);
  Rng rng(32);
  const graph::RelationTensor rel = RandomRelations(26, 3, 90, &rng);
  const Tensor x0 = checker.Gaussian({26, 5});
  const Tensor cot = checker.Gaussian({26, 4});
  checker.Check("GatLayer", [&]() {
    Rng lrng(9);
    graph::GatLayer layer(rel, 5, 4, &lrng);
    ag::VarPtr xv = ag::MakeVariable(x0.Clone(), true);
    ag::VarPtr y = layer.Forward(xv);
    ag::Backward(ag::SumAll(ag::Mul(y, ag::Constant(cot))));
    std::vector<Tensor> out{y->value, xv->grad,
                            layer.last_attention().Clone()};
    for (const auto& p : layer.Parameters()) out.push_back(p->grad);
    return out;
  });
}

TEST(GraphBackendEquivalenceTest, RsrExplicitPredictorScores) {
  GraphChecker checker;
  checker.set_rtol(2e-3f).set_atol(2e-4f);
  Rng rng(33);
  const graph::RelationTensor rel = RandomRelations(20, 4, 70, &rng);
  const Tensor x0 = checker.Uniform({6, 20, 4}, 0.9f, 1.1f);
  checker.Check("RSR_E", [&]() {
    baselines::RsrPredictor pred(rel, baselines::RsrVariant::kExplicit,
                                 /*num_features=*/4, /*hidden=*/8,
                                 /*alpha=*/0.1f, /*seed=*/123);
    return std::vector<Tensor>{pred.Score(x0)};
  });
}

TEST(GraphBackendEquivalenceTest, DegenerateUniversesRunOnBothBackends) {
  GraphChecker checker;
  checker.set_rtol(2e-3f).set_atol(2e-4f);
  // No relations at all: propagation degenerates to the identity.
  graph::RelationTensor empty(5, 2);
  const Tensor xe = checker.Uniform({6, 5, 3}, 0.9f, 1.1f);
  // Single-stock universe (the market-generator regression case).
  graph::RelationTensor one(1, 1);
  const Tensor x1 = checker.Uniform({6, 1, 3}, 0.9f, 1.1f);
  struct Case {
    const graph::RelationTensor* rel;
    const Tensor* x;
    const char* name;
  } cases[] = {{&empty, &xe, "empty relations"}, {&one, &x1, "single stock"}};
  for (const Case& c : cases) {
    for (core::Strategy strat :
         {core::Strategy::kUniform, core::Strategy::kWeight,
          core::Strategy::kTimeSensitive}) {
      checker.Check(std::string(c.name) + " " + core::StrategyName(strat),
                    [&]() {
                      Rng mrng(41);
                      core::RtGcnConfig cfg;
                      cfg.strategy = strat;
                      cfg.window = 6;
                      cfg.num_features = 3;
                      cfg.relational_filters = 4;
                      cfg.temporal_stride = 2;
                      cfg.dropout = 0.0f;
                      core::RtGcnModel model(*c.rel, cfg, &mrng);
                      model.SetTraining(false);
                      Rng fwd(7);
                      ag::VarPtr scores =
                          model.Forward(ag::Constant(*c.x), &fwd);
                      for (int64_t i = 0; i < scores->value.numel(); ++i) {
                        EXPECT_TRUE(std::isfinite(scores->value.data()[i]))
                            << c.name;
                      }
                      return std::vector<Tensor>{scores->value};
                    });
    }
  }
}

// ---------------------------------------------------------------------------
// Backend dispatch (mirror of kernel_dispatch_test)
// ---------------------------------------------------------------------------

// Restores RTGCN_GRAPH_BACKEND and the selection after each test so
// ordering does not leak between cases.
class GraphDispatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* env = std::getenv("RTGCN_GRAPH_BACKEND");
    had_env_ = env != nullptr;
    if (had_env_) saved_env_ = env;
    prev_ = graph::ActiveGraphBackend();
  }
  void TearDown() override {
    if (had_env_) {
      ::setenv("RTGCN_GRAPH_BACKEND", saved_env_.c_str(), 1);
    } else {
      ::unsetenv("RTGCN_GRAPH_BACKEND");
    }
    graph::SetGraphBackend(prev_);
  }

  bool had_env_ = false;
  std::string saved_env_;
  graph::GraphBackend prev_ = graph::GraphBackend::kSparse;
};

TEST_F(GraphDispatchTest, ResolveBackendKnownNames) {
  ASSERT_TRUE(graph::ResolveGraphBackend("dense").ok());
  EXPECT_EQ(graph::ResolveGraphBackend("dense").ValueOrDie(),
            graph::GraphBackend::kDense);
  ASSERT_TRUE(graph::ResolveGraphBackend("sparse").ok());
  EXPECT_EQ(graph::ResolveGraphBackend("sparse").ValueOrDie(),
            graph::GraphBackend::kSparse);
  // auto (and empty) resolve to the O(E) sparse path.
  EXPECT_EQ(graph::ResolveGraphBackend("auto").ValueOrDie(),
            graph::GraphBackend::kSparse);
  EXPECT_EQ(graph::ResolveGraphBackend("").ValueOrDie(),
            graph::GraphBackend::kSparse);
}

TEST_F(GraphDispatchTest, ResolveBackendRejectsUnknown) {
  for (const char* bad : {"csr", "DENSE", "Sparse", "fastest"}) {
    Result<graph::GraphBackend> r = graph::ResolveGraphBackend(bad);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_NE(r.status().message().find("unknown graph backend"),
              std::string::npos)
        << r.status().message();
  }
}

TEST_F(GraphDispatchTest, SetBackendByName) {
  ASSERT_TRUE(graph::SetGraphBackendByName("dense").ok());
  EXPECT_EQ(graph::ActiveGraphBackend(), graph::GraphBackend::kDense);
  ASSERT_TRUE(graph::SetGraphBackendByName("sparse").ok());
  EXPECT_EQ(graph::ActiveGraphBackend(), graph::GraphBackend::kSparse);
  ASSERT_FALSE(graph::SetGraphBackendByName("not-a-backend").ok());
  // Failed resolution leaves the selection untouched.
  EXPECT_EQ(graph::ActiveGraphBackend(), graph::GraphBackend::kSparse);
}

TEST_F(GraphDispatchTest, EnvVarForcesDense) {
  ::setenv("RTGCN_GRAPH_BACKEND", "dense", 1);
  graph::ReinitGraphBackendFromEnvForTest();
  EXPECT_EQ(graph::ActiveGraphBackend(), graph::GraphBackend::kDense);
}

TEST_F(GraphDispatchTest, InvalidEnvVarFallsBackToAuto) {
  ::setenv("RTGCN_GRAPH_BACKEND", "warp-drive", 1);
  graph::ReinitGraphBackendFromEnvForTest();
  // Must not abort; auto resolves to sparse.
  EXPECT_EQ(graph::ActiveGraphBackend(), graph::GraphBackend::kSparse);
}

TEST_F(GraphDispatchTest, UnsetEnvDefaultsToSparse) {
  ::unsetenv("RTGCN_GRAPH_BACKEND");
  graph::ReinitGraphBackendFromEnvForTest();
  EXPECT_EQ(graph::ActiveGraphBackend(), graph::GraphBackend::kSparse);
}

TEST_F(GraphDispatchTest, SelectionPublishedToRegistry) {
  auto& reg = obs::Registry::Global();
  graph::SetGraphBackend(graph::GraphBackend::kDense);
  EXPECT_EQ(reg.GetGauge("graph.backend")->Value(),
            static_cast<double>(graph::GraphBackend::kDense));
  const uint64_t before =
      reg.GetCounter("graph.backend.selected.sparse")->Value();
  graph::SetGraphBackend(graph::GraphBackend::kSparse);
  EXPECT_EQ(reg.GetGauge("graph.backend")->Value(),
            static_cast<double>(graph::GraphBackend::kSparse));
  EXPECT_EQ(reg.GetCounter("graph.backend.selected.sparse")->Value(),
            before + 1);
}

TEST_F(GraphDispatchTest, BuildMetricsPublished) {
  auto& reg = obs::Registry::Global();
  const uint64_t before = reg.GetCounter("graph.sparse.builds")->Value();
  graph::CsrPtr g = graph::CsrGraph::NormalizedAdjacency(MakeTriangle());
  EXPECT_EQ(reg.GetCounter("graph.sparse.builds")->Value(), before + 1);
  EXPECT_EQ(reg.GetGauge("graph.sparse.last_build_entries")->Value(),
            static_cast<double>(g->num_entries()));
  EXPECT_EQ(reg.GetGauge("graph.sparse.last_build_bytes")->Value(),
            static_cast<double>(g->ApproxBytes()));
}

TEST_F(GraphDispatchTest, ScopedGraphBackendRestores) {
  graph::SetGraphBackend(graph::GraphBackend::kSparse);
  {
    ScopedGraphBackend scope(graph::GraphBackend::kDense);
    EXPECT_EQ(graph::ActiveGraphBackend(), graph::GraphBackend::kDense);
  }
  EXPECT_EQ(graph::ActiveGraphBackend(), graph::GraphBackend::kSparse);
}

}  // namespace
}  // namespace rtgcn
