file(REMOVE_RECURSE
  "librtgcn_harness.a"
)
