// One configuration surface for the whole serving stack (DESIGN.md §15).
//
// Before this existed every layer grew its own Options struct —
// InferenceServer, SocketServer, AsyncServer, ShardRouter,
// AdmissionController, Client — and every binary (serve_server,
// bench_serve, chaos harnesses) re-declared the same dozen flags with
// drifting names and defaults. ServerConfig is the single source of
// truth: one struct, one RegisterFlags() that binds every knob to a
// FlagSet, and projection methods that derive each layer's Options from
// it. A binary registers once, parses once, and wires the stack with
// `config.server_options()`, `config.async_options()`, ... — defaults
// and flag names cannot drift between binaries anymore.
#ifndef RTGCN_SERVE_CONFIG_H_
#define RTGCN_SERVE_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/flags.h"
#include "common/status.h"
#include "serve/admission.h"
#include "serve/async_server.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/shard_router.h"
#include "serve/socket_server.h"

namespace rtgcn::serve {

/// \brief Every serving knob in one place. Field defaults are the
/// production defaults; RegisterFlags() exposes each as --<name>.
struct ServerConfig {
  // Front end.
  std::string front = "epoll";  ///< "epoll" (AsyncServer) or "threaded"
  int port = 0;                 ///< 0 picks an ephemeral port
  int backlog = 256;
  int64_t max_connections = 10000;
  int64_t max_line_bytes = 65536;
  int64_t send_timeout_ms = 5000;   ///< threaded front end only
  int64_t executor_threads = 16;    ///< epoll: blocking-path workers
  int64_t max_outbox_bytes = 1 << 20;  ///< epoll: per-conn reply buffer cap
  int64_t max_pending_lines = 128;     ///< epoll: per-conn line backlog cap

  // Sharding. num_shards == 1 still routes through the ShardRouter when a
  // binary asks for one; binaries may also use it to pick the
  // single-process InferenceServer directly.
  int64_t num_shards = 1;
  int64_t virtual_nodes = 64;  ///< ring points per shard

  // Micro-batching + score cache (per shard, or the whole server).
  int64_t max_batch = 32;
  int64_t batch_timeout_us = 200;
  bool enable_cache = true;
  int64_t cache_capacity = 256;

  // Overload safety.
  int64_t max_queue = 1024;
  std::string admission = "reject";  ///< "reject" or "block"
  int64_t admission_timeout_ms = 50;
  int64_t degraded_failure_threshold = 3;

  // Client (loopback tools, benches, chaos harnesses).
  int64_t connect_timeout_ms = 1000;
  int64_t recv_timeout_ms = 5000;
  int64_t send_client_timeout_ms = 5000;
  int max_attempts = 4;
  bool retry_busy = true;

  /// Binds every field to `fs` as --<field name>. `prefix` namespaces the
  /// flags (e.g. "serve_") for binaries that also register other groups.
  void RegisterFlags(FlagSet* fs, const std::string& prefix = "");

  /// Cross-field validation (front/admission choices, positive bounds).
  /// RegisterChoice already rejects bad enum values at parse time; this
  /// catches configs built in code.
  Status Validate() const;

  AdmissionPolicy admission_policy() const;
  bool use_epoll() const { return front == "epoll"; }

  // Projections: each layer's Options derived from the shared fields.
  InferenceServer::Options server_options() const;
  ShardRouter::Options shard_options() const;
  SocketServer::Options socket_options() const;
  AsyncServer::Options async_options() const;
  Client::Options client_options() const;
};

}  // namespace rtgcn::serve

#endif  // RTGCN_SERVE_CONFIG_H_
