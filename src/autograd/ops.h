// Differentiable operations over ag::Variable.
//
// Each op computes its forward value with the eager kernels in tensor/ops.h
// and, when gradient mode is on and any input needs gradients, installs a
// backward closure on the output. Gradients for broadcast inputs are reduced
// back to the input shape automatically by Variable::AccumulateGrad.
#ifndef RTGCN_AUTOGRAD_OPS_H_
#define RTGCN_AUTOGRAD_OPS_H_

#include <vector>

#include "autograd/variable.h"
#include "common/random.h"

namespace rtgcn::ag {

/// True when gradients must flow to or through `v`.
inline bool NeedsGrad(const VarPtr& v) {
  return v->requires_grad || !v->is_leaf();
}

// Elementwise binary (broadcasting).
VarPtr Add(const VarPtr& a, const VarPtr& b);
VarPtr Sub(const VarPtr& a, const VarPtr& b);
VarPtr Mul(const VarPtr& a, const VarPtr& b);
VarPtr Div(const VarPtr& a, const VarPtr& b);

// Scalar variants.
VarPtr AddScalar(const VarPtr& a, float s);
VarPtr MulScalar(const VarPtr& a, float s);

// Elementwise unary.
VarPtr Neg(const VarPtr& a);
VarPtr Relu(const VarPtr& a);
VarPtr LeakyRelu(const VarPtr& a, float slope);
VarPtr Sigmoid(const VarPtr& a);
VarPtr Tanh(const VarPtr& a);
VarPtr Exp(const VarPtr& a);
VarPtr Log(const VarPtr& a);
VarPtr Sqrt(const VarPtr& a);
VarPtr Square(const VarPtr& a);
VarPtr Abs(const VarPtr& a);

// Matrix products.
VarPtr MatMul(const VarPtr& a, const VarPtr& b);
/// a: [B,m,k]; b: [B,k,n] or [k,n] (shared across the batch).
VarPtr BatchMatMul(const VarPtr& a, const VarPtr& b);
VarPtr Transpose(const VarPtr& a);
VarPtr Permute(const VarPtr& a, const std::vector<int64_t>& perm);

// Reductions.
VarPtr Sum(const VarPtr& a, int64_t axis, bool keepdims = false);
VarPtr Mean(const VarPtr& a, int64_t axis, bool keepdims = false);
VarPtr SumAll(const VarPtr& a);
VarPtr MeanAll(const VarPtr& a);

/// Numerically stable softmax along `axis`.
VarPtr Softmax(const VarPtr& a, int64_t axis);

// Shape surgery.
VarPtr Reshape(const VarPtr& a, Shape shape);
VarPtr SliceOp(const VarPtr& a, int64_t axis, int64_t start, int64_t end);
VarPtr ConcatOp(const std::vector<VarPtr>& parts, int64_t axis);

/// Keeps every `step`-th index along `axis` starting at `start`
/// (out[..., i, ...] = a[..., start + i*step, ...]). Used for strided
/// temporal convolution.
VarPtr Downsample(const VarPtr& a, int64_t axis, int64_t step,
                  int64_t start = 0);

/// Training-time inverted dropout; identity when `training` is false or
/// `p == 0`. `spatial_axis >= 0` drops entire slices along that axis
/// (spatial dropout, §IV-C of the paper).
VarPtr Dropout(const VarPtr& a, float p, bool training, Rng* rng,
               int64_t spatial_axis = -1);

/// Sum of squares of all entries (L2 regularizer building block).
VarPtr SquaredNorm(const VarPtr& a);

}  // namespace rtgcn::ag

#endif  // RTGCN_AUTOGRAD_OPS_H_
