#include "graph/gat.h"

#include "autograd/ops.h"
#include "graph/adjacency.h"
#include "tensor/init.h"

namespace rtgcn::graph {

void GatLayer::InitParameters(Rng* rng) {
  weight_ = RegisterParameter(
      "weight",
      XavierUniform({in_features_, out_features_}, in_features_,
                    out_features_, rng));
  a_src_ = RegisterParameter(
      "a_src", XavierUniform({out_features_, 1}, out_features_, 1, rng));
  a_dst_ = RegisterParameter(
      "a_dst", XavierUniform({out_features_, 1}, out_features_, 1, rng));
}

GatLayer::GatLayer(Tensor edge_mask, int64_t in_features, int64_t out_features,
                   Rng* rng, float leaky_slope)
    : in_features_(in_features),
      out_features_(out_features),
      leaky_slope_(leaky_slope) {
  RTGCN_CHECK_EQ(edge_mask.ndim(), 2);
  const int64_t n = edge_mask.dim(0);
  RTGCN_CHECK_EQ(edge_mask.dim(1), n);
  mask_ = edge_mask.Clone();
  float* pm = mask_.data();
  for (int64_t i = 0; i < n; ++i) pm[i * n + i] = 1.0f;  // self loops
  InitParameters(rng);
}

GatLayer::GatLayer(const RelationTensor& relations, int64_t in_features,
                   int64_t out_features, Rng* rng, float leaky_slope)
    : in_features_(in_features),
      out_features_(out_features),
      leaky_slope_(leaky_slope) {
  if (ActiveGraphBackend() == GraphBackend::kSparse) {
    csr_ = CsrGraph::UniformMask(relations, /*add_self_loops=*/true);
  } else {
    const int64_t n = relations.num_stocks();
    mask_ = relations.DenseMask();
    float* pm = mask_.data();
    for (int64_t i = 0; i < n; ++i) pm[i * n + i] = 1.0f;
  }
  InitParameters(rng);
}

ag::VarPtr GatLayer::Forward(const ag::VarPtr& x) const {
  RTGCN_CHECK_EQ(x->value.ndim(), 2);
  RTGCN_CHECK_EQ(x->value.dim(1), in_features_);
  ag::VarPtr h = ag::MatMul(x, weight_);  // [N, out]
  ag::VarPtr src = ag::MatMul(h, a_src_);  // [N, 1]
  if (csr_) {
    ag::VarPtr dst = ag::MatMul(h, a_dst_);  // [N, 1]
    last_attention_ = Tensor();
    return SparseGatAttention(csr_, src, dst, h, leaky_slope_,
                              &last_alpha_entries_);
  }
  // e_ij = LeakyReLU(src_i + dst_j): outer sum via broadcasting.
  ag::VarPtr dst = ag::Transpose(ag::MatMul(h, a_dst_));  // [1, N]
  ag::VarPtr e = ag::LeakyRelu(ag::Add(src, dst), leaky_slope_);
  ag::VarPtr alpha = MaskedRowSoftmax(e, mask_);
  last_attention_ = alpha->value;
  return ag::MatMul(alpha, h);
}

const Tensor& GatLayer::last_attention() const {
  if (csr_ && last_alpha_entries_.defined()) {
    last_attention_ = csr_->Densify(last_alpha_entries_.data());
    last_alpha_entries_ = Tensor();
  }
  return last_attention_;
}

}  // namespace rtgcn::graph
