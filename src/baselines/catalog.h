// Factory for every model in the paper's comparison (Table IV) and the
// experiment runner shared by all benchmark binaries.
#ifndef RTGCN_BASELINES_CATALOG_H_
#define RTGCN_BASELINES_CATALOG_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/hypergraph.h"
#include "harness/evaluator.h"
#include "harness/predictor.h"
#include "market/market.h"

namespace rtgcn::baselines {

/// \brief Shared hyperparameters for model construction.
struct ModelConfig {
  int64_t window = 15;       ///< T, the paper's tuned value
  int64_t num_features = 4;  ///< close + 5/10/20-day MAs
  int64_t hidden = 32;       ///< convolution filters (RT-GCN / RT-GAT)
  /// Hidden width of the recurrent baselines. Their reference
  /// implementations use wide LSTMs (RSR: 64 units); 32 keeps that capacity
  /// ratio at this repo's scale and is what makes the LSTM-based rankers
  /// slower than the pure-convolution RT-GCN (Figure 5's comparison).
  int64_t rnn_hidden = 32;
  float alpha = 0.1f;        ///< ranking-loss balance
  uint64_t seed = 1;
};

/// Model names accepted by CreateModel, in Table IV's row order.
std::vector<std::string> Table4Models();

/// Category tag for a model name ("CLF", "REG", "RL", "RAN", "Ours").
std::string ModelCategory(const std::string& name);

/// Builds a model by Table IV name (e.g. "RSR_E", "RT-GCN (T)", "R-Conv").
/// `relations` must outlive the predictor. Aborts on an unknown name.
std::unique_ptr<harness::StockPredictor> CreateModel(
    const std::string& name, const graph::RelationTensor& relations,
    const market::MarketData& data, const ModelConfig& config);

/// Hypergraph for STHAN-SR: one hyperedge per industry plus one per wiki
/// relation type (members = stocks touching that type).
graph::Hypergraph BuildHypergraph(const market::MarketData& data);

// ---------------------------------------------------------------------------
// Experiment runner
// ---------------------------------------------------------------------------

/// Which relation family the model sees (Table VI ablation).
enum class RelationSubset { kAll, kIndustryOnly, kWikiOnly };

/// \brief One full train-and-evaluate run.
struct ExperimentConfig {
  std::string model;
  ModelConfig model_config;
  harness::TrainOptions train;
  RelationSubset relations = RelationSubset::kAll;
};

struct ExperimentResult {
  std::string model;
  harness::EvalResult eval;
  harness::FitStats fit;
};

ExperimentResult RunExperiment(const market::MarketData& data,
                               const ExperimentConfig& config);

/// \brief Metric samples across repeated runs (different seeds), the paper's
/// 15-run protocol (§V-B4).
struct RepeatedMetrics {
  std::vector<double> mrr;
  std::vector<double> irr1;
  std::vector<double> irr5;
  std::vector<double> irr10;
  bool has_mrr = true;

  double MeanMrr() const;
  double MeanIrr(int64_t k) const;
  const std::vector<double>& IrrSamples(int64_t k) const;
};

RepeatedMetrics RunRepeated(const market::MarketData& data,
                            ExperimentConfig config, int64_t repetitions);

}  // namespace rtgcn::baselines

#endif  // RTGCN_BASELINES_CATALOG_H_
