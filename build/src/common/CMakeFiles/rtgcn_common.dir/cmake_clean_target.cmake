file(REMOVE_RECURSE
  "librtgcn_common.a"
)
