// Immutable frozen-model snapshots for the inference runtime.
//
// A ModelSnapshot owns one ServableModel whose parameters were loaded from
// a checkpoint (validated by the v2 CRC/manifest machinery in
// nn/serialize.h) and answers forward-only scoring queries. Snapshots are
// immutable after Load and shared by std::shared_ptr, so the registry can
// atomically publish a new one while in-flight queries keep scoring against
// the version they started with (RCU-style reclamation: the last reference
// frees the old model).
#ifndef RTGCN_SERVE_SNAPSHOT_H_
#define RTGCN_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "harness/gradient_predictor.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace rtgcn::serve {

/// \brief Minimal contract a model must satisfy to be served: expose its
/// parameter tree (for checkpoint loading) and score one day's features.
class ServableModel {
 public:
  virtual ~ServableModel() = default;

  /// Parameter tree the checkpoint is loaded into.
  virtual nn::Module* module() = 0;

  /// Forward-only ranking scores [N] for features [T, N, D]. Called with
  /// gradient taping disabled and the module in eval mode; implementations
  /// must not mutate parameters.
  virtual Tensor Score(const Tensor& features) = 0;
};

/// Builds a fresh, architecture-complete (but untrained) servable model;
/// the registry invokes it once per checkpoint load.
using ServableFactory = std::function<std::unique_ptr<ServableModel>()>;

/// Adapts any harness::GradientPredictor (RT-GCN and every gradient-trained
/// baseline) into a ServableModel via its forward-only Score path.
std::unique_ptr<ServableModel> WrapPredictor(
    std::unique_ptr<harness::GradientPredictor> predictor);

/// \brief An immutable model version: weights frozen from one checkpoint.
class ModelSnapshot {
 public:
  /// Builds a model with `factory`, loads `path` into it (CRC/manifest
  /// validated; any corruption fails the load without publishing), and
  /// freezes it in eval mode under `version`.
  static Result<std::shared_ptr<const ModelSnapshot>> Load(
      const ServableFactory& factory, const std::string& path,
      int64_t version);

  /// Checkpoint epoch this snapshot was promoted from (strictly increasing
  /// across promotions within one registry).
  int64_t version() const { return version_; }
  const std::string& source_path() const { return source_path_; }
  int64_t num_parameters() const { return num_parameters_; }

  /// Forward-only scores [N] for features [T, N, D], under NoGradGuard.
  /// Thread-safe: concurrent callers are serialized on an internal mutex
  /// (the forward itself data-parallelizes via the shared thread pool), so
  /// any thread — batcher, test, or bench — may score any snapshot.
  Tensor Score(const Tensor& features) const;

 private:
  ModelSnapshot(std::unique_ptr<ServableModel> model, std::string path,
                int64_t version);

  std::unique_ptr<ServableModel> model_;
  std::string source_path_;
  int64_t version_;
  int64_t num_parameters_ = 0;
  mutable std::mutex forward_mu_;
};

}  // namespace rtgcn::serve

#endif  // RTGCN_SERVE_SNAPSHOT_H_
