file(REMOVE_RECURSE
  "CMakeFiles/rtgcn_autograd.dir/gradcheck.cc.o"
  "CMakeFiles/rtgcn_autograd.dir/gradcheck.cc.o.d"
  "CMakeFiles/rtgcn_autograd.dir/ops.cc.o"
  "CMakeFiles/rtgcn_autograd.dir/ops.cc.o.d"
  "CMakeFiles/rtgcn_autograd.dir/optimizer.cc.o"
  "CMakeFiles/rtgcn_autograd.dir/optimizer.cc.o.d"
  "CMakeFiles/rtgcn_autograd.dir/variable.cc.o"
  "CMakeFiles/rtgcn_autograd.dir/variable.cc.o.d"
  "librtgcn_autograd.a"
  "librtgcn_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtgcn_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
