// Replay load generator: thousands of concurrent simulated clients from
// one thread (DESIGN.md §15).
//
// Thread-per-connection load generation stops scaling long before the
// epoll front end does, so the generator mirrors the server's design: one
// epoll set multiplexes every simulated client. Each connection is
// closed-loop — it writes one request line, waits for the reply, records
// the round-trip, and immediately writes its next line — so concurrency
// equals the connection count, and offered load self-clocks to whatever
// the server sustains at that concurrency.
//
// Requests come from a `script`: a cycle of v1-payload lines ("SCORE 130
// 7", "RANK 130 5 DEADLINE 50", ...). Each connection starts at a
// seed-derived offset so concurrent clients spread over the script. Under
// --proto 2 the generator stamps the "2 <id>" framing itself and checks
// the echoed id on every reply. Only single-line-reply verbs belong in a
// script (no STATS).
//
// The Report carries client-side QPS and latency percentiles (from raw
// samples, not histogram buckets) and a reply breakdown; the same numbers
// are published to obs::Registry::Global() as replay.* for dashboards and
// the STATS verb.
#ifndef RTGCN_SERVE_REPLAY_H_
#define RTGCN_SERVE_REPLAY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace rtgcn::serve {

/// \brief Epoll-multiplexed closed-loop load generator.
class Replay {
 public:
  struct Options {
    int port = 0;              ///< server to drive (loopback)
    int64_t connections = 1000;  ///< concurrent simulated clients
    double seconds = 3.0;        ///< measurement window
    int proto = 2;               ///< wire framing: 1 or 2
    uint64_t seed = 1;           ///< script-offset stream
    int64_t max_line_bytes = 65536;  ///< reply-line sanity cap
    /// 0 = closed-loop at max rate (capacity mode). > 0 = paced: each
    /// connection waits out its share of 1/target_qps between requests,
    /// so latency percentiles measure service time with headroom instead
    /// of saturated queueing (latency mode).
    double target_qps = 0;
  };

  struct Report {
    double seconds = 0;
    uint64_t sent = 0;        ///< requests written
    uint64_t ok = 0;          ///< OK/PONG replies
    uint64_t busy = 0;        ///< BUSY (admission or connection cap)
    uint64_t draining = 0;
    uint64_t deadline = 0;    ///< ERR deadline exceeded
    uint64_t errors = 0;      ///< other ERR / malformed replies
    uint64_t abandoned = 0;   ///< in flight when the window closed
    uint64_t disconnects = 0; ///< connections the server closed on us
    double qps = 0;           ///< completed replies per second
    double p50_us = 0, p95_us = 0, p99_us = 0;  ///< OK replies only

    /// Every request written got exactly one disposition.
    bool Accounted() const {
      return sent == ok + busy + draining + deadline + errors + abandoned;
    }
  };

  /// `script` must be non-empty; lines are v1 payloads without framing or
  /// trailing newline.
  Replay(Options options, std::vector<std::string> script);

  /// Runs the full window and returns the report. Also publishes
  /// replay.{qps,p50_us,p99_us,sent,ok,busy,errors,...} to the global
  /// metrics registry.
  Result<Report> Run();

 private:
  Options options_;
  std::vector<std::string> script_;
};

}  // namespace rtgcn::serve

#endif  // RTGCN_SERVE_REPLAY_H_
