#include "graph/relation_tensor.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "obs/registry.h"

namespace rtgcn::graph {

Status RelationTensor::AddRelation(int64_t i, int64_t j, int64_t type) {
  if (i < 0 || i >= num_stocks_ || j < 0 || j >= num_stocks_) {
    return Status::OutOfRange("stock index (", i, ", ", j,
                              ") out of range for N=", num_stocks_);
  }
  if (i == j) {
    return Status::InvalidArgument("self relation on stock ", i);
  }
  if (type < 0 || type >= num_types_) {
    return Status::OutOfRange("relation type ", type, " out of range for K=",
                              num_types_);
  }
  auto& types = edges_[Key(i, j)];
  if (std::find(types.begin(), types.end(), static_cast<int32_t>(type)) ==
      types.end()) {
    types.push_back(static_cast<int32_t>(type));
    edge_list_cache_.reset();
  }
  return Status::OK();
}

Status RelationTensor::RemoveRelation(int64_t i, int64_t j, int64_t type) {
  if (i < 0 || i >= num_stocks_ || j < 0 || j >= num_stocks_) {
    return Status::OutOfRange("stock index (", i, ", ", j,
                              ") out of range for N=", num_stocks_);
  }
  if (i == j) {
    return Status::InvalidArgument("self relation on stock ", i);
  }
  if (type < 0 || type >= num_types_) {
    return Status::OutOfRange("relation type ", type, " out of range for K=",
                              num_types_);
  }
  auto it = edges_.find(Key(i, j));
  if (it == edges_.end()) return Status::OK();
  auto& types = it->second;
  auto pos =
      std::find(types.begin(), types.end(), static_cast<int32_t>(type));
  if (pos == types.end()) return Status::OK();
  types.erase(pos);
  if (types.empty()) edges_.erase(it);
  edge_list_cache_.reset();
  return Status::OK();
}

bool RelationTensor::HasEdge(int64_t i, int64_t j) const {
  if (i == j) return false;
  return edges_.count(Key(i, j)) > 0;
}

bool RelationTensor::HasRelation(int64_t i, int64_t j, int64_t type) const {
  if (i == j) return false;
  auto it = edges_.find(Key(i, j));
  if (it == edges_.end()) return false;
  return std::find(it->second.begin(), it->second.end(),
                   static_cast<int32_t>(type)) != it->second.end();
}

std::vector<int32_t> RelationTensor::Types(int64_t i, int64_t j) const {
  if (i == j) return {};
  auto it = edges_.find(Key(i, j));
  if (it == edges_.end()) return {};
  return it->second;
}

double RelationTensor::RelationRatio() const {
  const double pairs =
      static_cast<double>(num_stocks_) * (num_stocks_ - 1) / 2.0;
  return pairs == 0 ? 0.0 : static_cast<double>(edges_.size()) / pairs;
}

namespace {

// Hash-map buckets cannot be range-split, so densification snapshots the
// keys and parallelizes over the snapshot. Every key owns a distinct
// (i,j)/(j,i) cell pair, so chunked writes never collide, and the written
// value is a constant — the result is identical at any thread count.
template <typename KeepFn>
Tensor DenseFromEdges(
    const std::unordered_map<int64_t, std::vector<int32_t>>& edges, int64_t n,
    KeepFn keep) {
  std::vector<const std::pair<const int64_t, std::vector<int32_t>>*> items;
  items.reserve(edges.size());
  for (const auto& kv : edges) items.push_back(&kv);
  Tensor mask = Tensor::Zeros({n, n});
  float* p = mask.data();
  ParallelFor(
      0, static_cast<int64_t>(items.size()), 512,
      [&](int64_t lo, int64_t hi) {
        for (int64_t e = lo; e < hi; ++e) {
          if (!keep(items[e]->second)) continue;
          const int64_t i = items[e]->first / n;
          const int64_t j = items[e]->first % n;
          p[i * n + j] = 1.0f;
          p[j * n + i] = 1.0f;
        }
      });
  return mask;
}

}  // namespace

Tensor RelationTensor::DenseMask() const {
  return DenseFromEdges(edges_, num_stocks_,
                        [](const std::vector<int32_t>&) { return true; });
}

Tensor RelationTensor::DenseTypeSlice(int64_t type) const {
  RTGCN_CHECK(type >= 0 && type < num_types_);
  return DenseFromEdges(edges_, num_stocks_,
                        [type](const std::vector<int32_t>& types) {
                          return std::find(types.begin(), types.end(),
                                           static_cast<int32_t>(type)) !=
                                 types.end();
                        });
}

const std::vector<RelationTensor::Edge>& RelationTensor::EdgeList() const {
  if (edge_list_cache_) {
    obs::Registry::Global()
        .GetCounter("graph.sparse.rebuild_reuse")
        ->Increment();
    return *edge_list_cache_;
  }
  auto out = std::make_shared<std::vector<Edge>>();
  out->reserve(edges_.size());
  for (const auto& [key, types] : edges_) {
    Edge e;
    e.i = key / num_stocks_;
    e.j = key % num_stocks_;
    e.types = types;
    std::sort(e.types.begin(), e.types.end());
    out->push_back(std::move(e));
  }
  std::sort(out->begin(), out->end(), [](const Edge& a, const Edge& b) {
    return a.i != b.i ? a.i < b.i : a.j < b.j;
  });
  edge_list_cache_ = std::move(out);
  return *edge_list_cache_;
}

RelationTensor RelationTensor::FilterTypes(int64_t type_begin,
                                           int64_t type_end) const {
  type_begin = std::max<int64_t>(type_begin, 0);
  type_end = std::min(type_end, num_types_);
  // Compact the surviving range to [0, type_end - type_begin): the view
  // must not report relation types that can never occur, or models built
  // on it (Table VI ablation) train dead per-type weights.
  RelationTensor out(num_stocks_, std::max<int64_t>(type_end - type_begin, 0));
  for (const auto& [key, types] : edges_) {
    const int64_t i = key / num_stocks_;
    const int64_t j = key % num_stocks_;
    for (int32_t t : types) {
      if (t >= type_begin && t < type_end) {
        out.AddRelation(i, j, t - type_begin).Abort();
      }
    }
  }
  return out;
}

}  // namespace rtgcn::graph
