// Divergence supervisor for training loops.
//
// A TrainingGuard watches per-step losses and gradient norms for the two
// ways training silently dies: non-finite values (NaN/Inf loss or
// gradients) and loss explosions (a step loss far above the running EMA of
// recent losses). Every violation is recorded as a structured event and
// answered with the configured policy:
//
//   kSkip     — drop the offending update and keep going (bad data point);
//   kRollback — restore the last good checkpoint, decay the learning rate
//               and retrain from there (diverged optimizer state);
//   kAbort    — stop training immediately, leaving the model at its last
//               state (fail fast, e.g. under CI).
//
// The guard itself is policy + bookkeeping: the training loop asks
// StepLossOk/GradNormOk before committing an update, and (for kRollback)
// performs the restore itself when rollback_pending() turns true. A bounded
// intervention budget turns a persistently-diverging run into an abort
// rather than an infinite retry loop.
#ifndef RTGCN_HARNESS_TRAINING_GUARD_H_
#define RTGCN_HARNESS_TRAINING_GUARD_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rtgcn::harness {

/// \brief What a TrainingGuard does when a step violates its checks.
enum class GuardPolicy {
  kSkip,      ///< skip the offending optimizer step
  kRollback,  ///< restore last good state, decay LR, continue
  kAbort,     ///< stop training immediately
};

/// \brief Supervisor configuration (embedded in TrainOptions).
struct GuardOptions {
  /// Master switch. When false the guard records nothing and permits
  /// everything, reproducing the unguarded trainer exactly.
  bool enabled = true;

  GuardPolicy policy = GuardPolicy::kSkip;

  /// A step loss above `spike_factor * EMA(loss)` counts as a divergence
  /// spike. 0 disables spike detection (non-finite checks stay active).
  float spike_factor = 0.0f;
  /// EMA smoothing for the spike baseline.
  float ema_decay = 0.9f;
  /// Committed steps before spike detection arms (the EMA needs history).
  int64_t spike_warmup_steps = 20;

  /// Multiplier applied to the learning rate at each rollback.
  float lr_decay = 0.5f;

  /// Maximum interventions (skips + rollbacks) before the guard aborts the
  /// run anyway. 0 = unlimited.
  int64_t max_interventions = 25;
};

/// \brief One recorded guard intervention.
struct GuardEvent {
  int64_t step = 0;        ///< global step index at the violation
  std::string reason;      ///< "nonfinite_loss" | "loss_spike" | "nonfinite_grad_norm"
  GuardPolicy action = GuardPolicy::kSkip;  ///< policy applied
  double loss = 0;         ///< step loss at the violation
  double ema_loss = 0;     ///< EMA baseline at the violation (0 if unarmed)
  float grad_norm = 0;     ///< pre-clip gradient norm (0 for loss events)
  float lr_after = 0;      ///< learning rate after the intervention

  std::string ToString() const;
};

/// \brief Watches step losses / grad norms and applies a failure policy.
class TrainingGuard {
 public:
  TrainingGuard(GuardOptions options, float base_lr);

  /// Checks the forward loss of one step. Returns true when the step may
  /// proceed to backward/update; false records a violation and applies the
  /// policy (the caller must skip the optimizer step).
  bool StepLossOk(double loss);

  /// Checks the pre-clip gradient norm (Optimizer::ClipGradNorm's return).
  /// False records a violation; the caller must skip the optimizer step.
  bool GradNormOk(float norm);

  /// Feeds the EMA after a committed (healthy) update.
  void OnGoodStep(double loss);

  /// True when the policy is kRollback and a violation is waiting for the
  /// training loop to restore the last good state.
  bool rollback_pending() const { return rollback_pending_; }

  /// Marks the pending rollback as performed; returns the decayed learning
  /// rate the loop must apply to its optimizer.
  float CommitRollback();

  /// True when the guard has given up (policy kAbort hit, or the
  /// intervention budget is exhausted). The loop must stop training.
  bool aborted() const { return aborted_; }

  /// Learning rate after all rollbacks so far.
  float current_lr() const { return current_lr_; }

  int64_t interventions() const { return interventions_; }
  int64_t steps() const { return step_; }
  const std::vector<GuardEvent>& events() const { return events_; }
  const GuardOptions& options() const { return options_; }

 private:
  /// Records the event, applies the policy, returns "may proceed".
  bool OnViolation(const std::string& reason, double loss, float grad_norm);

  GuardOptions options_;
  float base_lr_;
  float current_lr_;
  double ema_loss_ = 0;
  int64_t good_steps_ = 0;     // committed steps feeding the EMA
  int64_t step_ = 0;           // all steps seen (committed or not)
  int64_t interventions_ = 0;
  bool rollback_pending_ = false;
  bool aborted_ = false;
  std::vector<GuardEvent> events_;
};

}  // namespace rtgcn::harness

#endif  // RTGCN_HARNESS_TRAINING_GUARD_H_
