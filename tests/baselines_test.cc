#include <gtest/gtest.h>

#include "baselines/arima.h"
#include "baselines/catalog.h"
#include "baselines/classification.h"
#include "market/market.h"
#include "tensor/ops.h"

namespace rtgcn::baselines {
namespace {

market::MarketData TinyMarket() {
  market::MarketSpec spec = market::NasdaqSpec();
  spec.num_stocks = 16;
  spec.num_industries = 4;
  spec.num_wiki_types = 2;
  spec.wiki_links_per_stock = 1.0;
  spec.train_days = 90;
  spec.test_days = 20;
  return market::BuildMarket(spec);
}

TEST(SolveLinearSystemTest, SolvesKnownSystem) {
  // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
  auto x = SolveLinearSystem({{2, 1}, {1, 3}}, {5, 10});
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 3.0, 1e-9);
}

TEST(SolveLinearSystemTest, SingularDirectionYieldsZero) {
  auto x = SolveLinearSystem({{1, 0}, {0, 0}}, {2, 5});
  EXPECT_NEAR(x[0], 2.0, 1e-9);
  EXPECT_NEAR(x[1], 0.0, 1e-9);
}

TEST(ClassificationTest, TrendClasses) {
  Tensor labels({4}, {0.05f, -0.05f, 0.001f, -0.001f});
  auto classes = TrendClasses(labels);
  EXPECT_EQ(classes[0], kClassUp);
  EXPECT_EQ(classes[1], kClassDown);
  EXPECT_EQ(classes[2], kClassNeutral);
  EXPECT_EQ(classes[3], kClassNeutral);
}

TEST(ClassificationTest, CrossEntropyLowForConfidentCorrect) {
  auto good = ag::Constant(Tensor({2, 3}, {10, 0, 0, 0, 0, 10}));
  auto bad = ag::Constant(Tensor({2, 3}, {0, 0, 10, 10, 0, 0}));
  std::vector<int> classes = {0, 2};
  EXPECT_LT(CrossEntropy(good, classes)->value.item(), 0.01f);
  EXPECT_GT(CrossEntropy(bad, classes)->value.item(), 5.0f);
}

TEST(ClassificationTest, ScoresAreUpMinusDownProb) {
  Tensor logits({1, 3}, {0, 0, 0});
  Tensor s = ClassificationScores(logits);
  EXPECT_NEAR(s.data()[0], 0.0f, 1e-6);
  Tensor up({1, 3}, {-5, 0, 5});
  EXPECT_GT(ClassificationScores(up).data()[0], 0.9f);
}

TEST(CatalogTest, CreatesEveryTable4Model) {
  market::MarketData data = TinyMarket();
  ModelConfig config;
  config.window = 8;
  for (const std::string& name : Table4Models()) {
    auto model = CreateModel(name, data.relations.relations, data, config);
    ASSERT_NE(model, nullptr) << name;
    EXPECT_EQ(model->name(), name);
  }
  // Ablations too.
  EXPECT_EQ(CreateModel("R-Conv", data.relations.relations, data, config)
                ->name(),
            "R-Conv");
  EXPECT_EQ(CreateModel("T-Conv", data.relations.relations, data, config)
                ->name(),
            "T-Conv");
  EXPECT_EQ(CreateModel("STHAN-SR", data.relations.relations, data, config)
                ->name(),
            "STHAN-SR");
}

TEST(CatalogTest, CategoriesMatchTable4Blocks) {
  EXPECT_EQ(ModelCategory("ARIMA"), "CLF");
  EXPECT_EQ(ModelCategory("A-LSTM"), "CLF");
  EXPECT_EQ(ModelCategory("SFM"), "REG");
  EXPECT_EQ(ModelCategory("DQN"), "RL");
  EXPECT_EQ(ModelCategory("Rank_LSTM"), "RAN");
  EXPECT_EQ(ModelCategory("RSR_E"), "RAN");
  EXPECT_EQ(ModelCategory("RT-GCN (T)"), "Ours");
}

TEST(CatalogTest, HypergraphCoversIndustriesAndWikiTypes) {
  market::MarketData data = TinyMarket();
  graph::Hypergraph hg = BuildHypergraph(data);
  EXPECT_EQ(hg.num_nodes(), 16);
  // At least the non-singleton industries contribute hyperedges.
  EXPECT_GE(hg.num_hyperedges(), 3);
}

// Every model must fit and predict on a tiny market; a parameterized sweep
// over the full catalog.
class ModelSmokeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelSmokeTest, FitPredictProducesFiniteScores) {
  market::MarketData data = TinyMarket();
  ModelConfig config;
  config.window = 8;
  config.hidden = 8;
  config.rnn_hidden = 8;
  auto model =
      CreateModel(GetParam(), data.relations.relations, data, config);
  market::WindowDataset dataset = data.MakeDataset(8, 4);
  market::DatasetSplit split =
      SplitByDay(dataset, data.spec.test_boundary());
  harness::TrainOptions opts;
  opts.epochs = 2;
  model->Fit(dataset, split.train_days, opts);
  Tensor scores = model->Predict(dataset, split.test_days.front());
  ASSERT_EQ(scores.numel(), 16);
  for (int64_t i = 0; i < scores.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(scores.data()[i])) << GetParam();
  }
  EXPECT_GT(model->fit_stats().train_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelSmokeTest,
                         ::testing::ValuesIn([] {
                           auto models = Table4Models();
                           models.push_back("STHAN-SR");
                           models.push_back("R-Conv");
                           models.push_back("T-Conv");
                           return models;
                         }()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(ExperimentTest, RunExperimentEndToEnd) {
  market::MarketData data = TinyMarket();
  ExperimentConfig config;
  config.model = "RT-GCN (T)";
  config.model_config.window = 8;
  config.model_config.hidden = 8;
  config.train.epochs = 2;
  ExperimentResult r = RunExperiment(data, config);
  EXPECT_EQ(r.model, "RT-GCN (T)");
  EXPECT_GT(r.eval.backtest.num_days, 0);
  EXPECT_GT(r.eval.backtest.mrr, 0.0);
  EXPECT_EQ(r.eval.backtest.irr.count(5), 1u);
}

TEST(ExperimentTest, RelationSubsetsChangeTheGraph) {
  market::MarketData data = TinyMarket();
  // Wiki-only view has far fewer edges than industry-only.
  EXPECT_LT(data.relations.WikiOnly().num_edges(),
            data.relations.IndustryOnly().num_edges());
}

TEST(ExperimentTest, RunRepeatedCollectsSamples) {
  market::MarketData data = TinyMarket();
  ExperimentConfig config;
  config.model = "T-Conv";  // fast
  config.model_config.window = 8;
  config.model_config.hidden = 8;
  config.train.epochs = 1;
  RepeatedMetrics m = RunRepeated(data, config, 2);
  EXPECT_EQ(m.mrr.size(), 2u);
  EXPECT_EQ(m.irr5.size(), 2u);
  EXPECT_TRUE(m.has_mrr);
  // Different seeds: runs should not be byte-identical.
  EXPECT_NE(m.irr1[0], m.irr1[1]);
}

TEST(ExperimentTest, ClassifierHasNoMrr) {
  market::MarketData data = TinyMarket();
  ExperimentConfig config;
  config.model = "ARIMA";
  config.model_config.window = 8;
  config.train.epochs = 1;
  RepeatedMetrics m = RunRepeated(data, config, 1);
  EXPECT_FALSE(m.has_mrr);
}

}  // namespace
}  // namespace rtgcn::baselines
