#include "common/csv.h"

#include <fstream>

#include "common/strings.h"

namespace rtgcn {

namespace {

// RFC-4180 field quoting: a field is quoted iff it contains a comma, a
// double quote, or a line break; embedded quotes are doubled.
bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\r\n") != std::string::npos;
}

void AppendField(std::string* out, const std::string& field) {
  if (!NeedsQuoting(field)) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

// Parses RFC-4180 content into rows of fields. Handles quoted fields with
// embedded commas, doubled quotes, and line breaks inside quotes. Outside
// quotes, '\n' ends a row and '\r' is ignored (CRLF and LF files parse
// identically, matching the previous reader's behavior). Rows with no
// content (blank lines) are skipped.
Status ParseCsv(const std::string& content, const std::string& path,
                std::vector<std::vector<std::string>>* rows) {
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // true once the current row has any content
  size_t i = 0;
  const size_t size = content.size();
  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
  };
  auto end_row = [&] {
    if (field_started || !row.empty()) {
      end_field();
      rows->push_back(std::move(row));
      row.clear();
    }
    field_started = false;
  };
  while (i < size) {
    const char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < size && content[i + 1] == '"') {
          field.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field.push_back(c);
      ++i;
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Status::IoError("stray quote inside unquoted field in ",
                                 path);
        }
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // a separator implies a (possibly empty) next field
        break;
      case '\n':
        end_row();
        break;
      case '\r':
        break;  // CRLF normalization
      default:
        field.push_back(c);
        field_started = true;
        break;
    }
    ++i;
  }
  if (in_quotes) {
    return Status::IoError("unterminated quoted field in ", path);
  }
  end_row();  // final row without trailing newline
  return Status::OK();
}

}  // namespace

int CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Result<CsvTable> ReadCsv(const std::string& path) {
  return ReadCsv(path, /*allow_ragged=*/false);
}

Result<CsvTable> ReadCsv(const std::string& path, bool allow_ragged) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open ", path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("read failure on ", path);

  std::vector<std::vector<std::string>> rows;
  RTGCN_RETURN_NOT_OK(ParseCsv(content, path, &rows));
  if (rows.empty()) return Status::IoError("empty CSV ", path);

  CsvTable table;
  table.header = std::move(rows.front());
  for (size_t r = 1; r < rows.size(); ++r) {
    if (!allow_ragged && rows[r].size() != table.header.size()) {
      return Status::IoError("row width mismatch in ", path, ": expected ",
                             table.header.size(), " got ", rows[r].size());
    }
    table.rows.push_back(std::move(rows[r]));
  }
  return table;
}

Status WriteCsv(const std::string& path, const CsvTable& table) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot create ", path);
  std::string line;
  auto write_row = [&](const std::vector<std::string>& row) {
    line.clear();
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line.push_back(',');
      AppendField(&line, row[i]);
    }
    line.push_back('\n');
    out << line;
  };
  write_row(table.header);
  for (const auto& row : table.rows) {
    if (row.size() != table.header.size()) {
      return Status::InvalidArgument("row width mismatch when writing ", path);
    }
    write_row(row);
  }
  if (!out) return Status::IoError("write failure on ", path);
  return Status::OK();
}

}  // namespace rtgcn
