// Stock universe: the set of tradable instruments with their static
// attributes (sector membership, market beta, capitalization).
//
// The paper's universes are the 854 NASDAQ / 1405 NYSE / 242 CSI stocks
// that survived 2015–2020; here a StockUniverse is generated synthetically
// with matching structural statistics (see DESIGN.md §1).
#ifndef RTGCN_MARKET_UNIVERSE_H_
#define RTGCN_MARKET_UNIVERSE_H_

#include <string>
#include <vector>

#include "common/random.h"

namespace rtgcn::market {

/// \brief One listed company.
struct Stock {
  std::string ticker;
  int32_t industry;     ///< industry id in [0, num_industries)
  float beta;           ///< sensitivity to the market factor
  float idio_vol;       ///< idiosyncratic daily volatility
  float market_cap;     ///< relative capitalization weight (for the index)
  float drift;          ///< small per-stock drift component
};

/// \brief A set of stocks partitioned into industries.
class StockUniverse {
 public:
  StockUniverse() = default;

  /// Generates `num_stocks` companies over `num_industries` industries with
  /// Zipf-like industry sizes (a few big sectors, a long tail), log-normal
  /// caps, betas around 1.
  static StockUniverse Generate(int64_t num_stocks, int64_t num_industries,
                                Rng* rng);

  int64_t size() const { return static_cast<int64_t>(stocks_.size()); }
  int64_t num_industries() const { return num_industries_; }
  const Stock& stock(int64_t i) const { return stocks_[i]; }
  const std::vector<Stock>& stocks() const { return stocks_; }

  /// Indices of all stocks in `industry`.
  std::vector<int64_t> IndustryMembers(int64_t industry) const;

 private:
  std::vector<Stock> stocks_;
  int64_t num_industries_ = 0;
};

}  // namespace rtgcn::market

#endif  // RTGCN_MARKET_UNIVERSE_H_
