#include "graph/adjacency.h"

#include <cmath>

#include "autograd/ops.h"
#include "common/thread_pool.h"

namespace rtgcn::graph {

Tensor NormalizedAdjacency(const Tensor& binary_adjacency) {
  RTGCN_CHECK_EQ(binary_adjacency.ndim(), 2);
  const int64_t n = binary_adjacency.dim(0);
  RTGCN_CHECK_EQ(binary_adjacency.dim(1), n);
  // Ã = A + I
  Tensor a_tilde = binary_adjacency.Clone();
  float* pa = a_tilde.data();
  for (int64_t i = 0; i < n; ++i) pa[i * n + i] = 1.0f;
  // D̃_ii = Σ_j Ã_ij — rows are independent, so split over i.
  std::vector<float> inv_sqrt_deg(n);
  ParallelFor(0, n, 64, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      double deg = 0;
      for (int64_t j = 0; j < n; ++j) deg += pa[i * n + j];
      inv_sqrt_deg[i] =
          deg > 0 ? 1.0f / std::sqrt(static_cast<float>(deg)) : 0.0f;
    }
  });
  Tensor out({n, n});
  float* po = out.data();
  ParallelFor(0, n, 64, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        po[i * n + j] = inv_sqrt_deg[i] * pa[i * n + j] * inv_sqrt_deg[j];
      }
    }
  });
  return out;
}

Tensor NormalizedAdjacency(const RelationTensor& relations) {
  return NormalizedAdjacency(relations.DenseMask());
}

namespace {

// Custom autograd node for the sparse edge-weight expansion: a dense matmul
// formulation would need K dense N×N masks per forward.
class RelationEdgeWeightOp {
 public:
  static ag::VarPtr Apply(const RelationTensor& relations,
                          const ag::VarPtr& w, const ag::VarPtr& b) {
    RTGCN_CHECK_EQ(w->value.ndim(), 1);
    RTGCN_CHECK_EQ(w->value.dim(0), relations.num_relation_types());
    RTGCN_CHECK_EQ(b->value.numel(), 1);
    const int64_t n = relations.num_stocks();
    auto edges = std::make_shared<std::vector<RelationTensor::Edge>>(
        relations.EdgeList());

    Tensor s = Tensor::Zeros({n, n});
    float* ps = s.data();
    const float* pw = w->value.data();
    const float bias = b->value.data()[0];
    // Each edge owns its (i,j)/(j,i) cell pair, so edge chunks write
    // disjoint memory and the expansion parallelizes cleanly.
    const int64_t num_edges = static_cast<int64_t>(edges->size());
    ParallelFor(0, num_edges, 256, [&](int64_t lo, int64_t hi) {
      for (int64_t idx = lo; idx < hi; ++idx) {
        const auto& e = (*edges)[idx];
        float weight = bias;
        for (int32_t t : e.types) weight += pw[t];
        ps[e.i * n + e.j] = weight;
        ps[e.j * n + e.i] = weight;
      }
    });
    for (int64_t i = 0; i < n; ++i) ps[i * n + i] = 1.0f;

    auto out = std::make_shared<ag::Variable>(s);
    if (ag::GradMode::enabled() && (ag::NeedsGrad(w) || ag::NeedsGrad(b))) {
      out->parents = {w, b};
      out->backward_fn = [w, b, edges, n](const Tensor& g) {
        const float* pg = g.data();
        if (ag::NeedsGrad(w)) {
          // Deterministic chunked reduction over edges: per-chunk partial
          // gw vectors folded in chunk order reproduce the serial per-type
          // accumulation order exactly.
          const int64_t num_edges = static_cast<int64_t>(edges->size());
          const int64_t k = w->value.numel();
          std::vector<float> acc = ParallelReduce(
              0, num_edges, 256, std::vector<float>(k, 0.0f),
              [&](int64_t lo, int64_t hi) {
                std::vector<float> partial(k, 0.0f);
                for (int64_t idx = lo; idx < hi; ++idx) {
                  const auto& e = (*edges)[idx];
                  const float ge = pg[e.i * n + e.j] + pg[e.j * n + e.i];
                  for (int32_t t : e.types) partial[t] += ge;
                }
                return partial;
              },
              [k](std::vector<float> a, std::vector<float> p) {
                for (int64_t t = 0; t < k; ++t) a[t] += p[t];
                return a;
              });
          w->AccumulateGrad(Tensor(w->value.shape(), std::move(acc)));
        }
        if (ag::NeedsGrad(b)) {
          double gb = 0;
          for (const auto& e : *edges) {
            gb += pg[e.i * n + e.j] + pg[e.j * n + e.i];
          }
          b->AccumulateGrad(
              Tensor(b->value.shape(),
                     std::vector<float>(b->value.numel(),
                                        static_cast<float>(gb))));
        }
      };
    }
    return out;
  }
};

}  // namespace

ag::VarPtr RelationEdgeWeights(const RelationTensor& relations,
                               const ag::VarPtr& w, const ag::VarPtr& b) {
  return RelationEdgeWeightOp::Apply(relations, w, b);
}

ag::VarPtr MaskedRowSoftmax(const ag::VarPtr& scores, const Tensor& mask) {
  RTGCN_CHECK(scores->shape() == mask.shape());
  // scores + (mask - 1) * BIG pushes masked entries to -inf before softmax;
  // the final multiply by mask zeroes any residual probability mass on rows
  // that have no neighbors at all.
  Tensor neg = rtgcn::MulScalar(rtgcn::AddScalar(mask, -1.0f), 1e9f);
  ag::VarPtr shifted = ag::Add(scores, ag::Constant(neg));
  ag::VarPtr soft = ag::Softmax(shifted, 1);
  return ag::Mul(soft, ag::Constant(mask));
}

}  // namespace rtgcn::graph
