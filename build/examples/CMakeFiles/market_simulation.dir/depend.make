# Empty dependencies file for market_simulation.
# This may be replaced when dependencies are built.
