// POSIX-socket line-protocol front-end for a serve::Backend.
//
// One accept thread plus one thread per connection; each connection is a
// newline-delimited request/response stream. The wire grammar (v1 and v2)
// lives in serve/protocol.h — this class only owns sockets and threads;
// parsing and dispatch are ExecuteLine.
//
// Overload safety: at most max_connections concurrent connections (excess
// accepts answer "BUSY too many connections" and close), request lines are
// capped at max_line_bytes (oversized senders get "ERR line too long" and
// are disconnected), and reply writes carry a send timeout so one slow
// reader cannot pin a handler thread forever. Connection threads and fds
// are reaped as connections end, not accumulated until Stop(). All writes
// use MSG_NOSIGNAL, so a client closing mid-reply surfaces as EPIPE, never
// as a process-wide SIGPIPE.
//
// Scores are printed with %.9g, which round-trips binary float32 exactly —
// a client can compare replies bit-for-bit against a local forward pass.
#ifndef RTGCN_SERVE_SOCKET_SERVER_H_
#define RTGCN_SERVE_SOCKET_SERVER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "serve/admission.h"
#include "serve/chaos.h"
#include "serve/metrics.h"
#include "serve/protocol.h"

namespace rtgcn::serve {

/// \brief TCP listener translating the line protocol into Backend calls
/// (single-process InferenceServer or sharded ShardRouter alike).
/// `server` (and its metrics) must outlive the SocketServer.
class SocketServer {
 public:
  struct Options {
    int port = 0;      ///< 0 picks an ephemeral port (see port())
    int backlog = 64;
    int64_t max_connections = 256;   ///< excess accepts get BUSY + close
    int64_t max_line_bytes = 65536;  ///< request-line cap (admission for bytes)
    int64_t send_timeout_ms = 5000;  ///< per-write bound against slow readers
  };

  SocketServer(Backend* server, Metrics* metrics, Options options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens, and starts the accept thread.
  Status Start();

  /// Closes the listener and all connections, then joins their threads.
  void Stop();

  /// Port actually bound (resolves an ephemeral request after Start).
  int port() const { return port_; }

  /// Number of currently open protocol connections.
  int64_t active_connections() const { return conn_gate_.in_use(); }

  /// Installs a fault injector consulted on every reply write. Call
  /// before Start(); pass nullptr to disable. `chaos` must outlive the
  /// server. Test/bench hook — never enabled in production paths.
  void SetChaos(ChaosInjector* chaos) { chaos_ = chaos; }

  /// Executes one protocol line and returns the reply (without trailing
  /// newline; STATS replies are multi-line; empty for QUIT). Thin wrapper
  /// over serve::ExecuteLine, kept for tests and the connection handlers.
  std::string HandleLine(const std::string& line);

 private:
  struct Conn {
    int fd = -1;  ///< -1 once the owning thread closed it
    std::thread thread;
  };

  void AcceptLoop();
  void HandleConnection(int64_t id, int fd);
  void FinishConnection(int64_t id, int fd);
  /// Joins and erases connections whose threads have finished.
  void ReapFinishedConnections();
  /// Writes `data` with MSG_NOSIGNAL, tolerating short writes; false on
  /// error or send-timeout (slow reader).
  bool SendAll(int fd, std::string_view data);
  /// Writes one reply line, applying the chaos plan when an injector is
  /// installed; false when the connection must be dropped.
  bool WriteReply(int fd, const std::string& reply);

  Backend* server_;
  Metrics* metrics_;
  Options options_;
  ChaosInjector* chaos_ = nullptr;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread acceptor_;
  bool started_ = false;

  AdmissionController conn_gate_;

  std::mutex conn_mu_;
  std::unordered_map<int64_t, Conn> conns_;
  std::vector<int64_t> done_ids_;
  int64_t next_conn_id_ = 0;
  bool stopping_ = false;
};

}  // namespace rtgcn::serve

#endif  // RTGCN_SERVE_SOCKET_SERVER_H_
