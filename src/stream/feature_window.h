// SlidingFeatureWindow: the model's [window, N, F] feature tensor,
// maintained incrementally as ticks arrive (DESIGN.md §14).
//
// The feature math is exactly market::WindowDataset's (close + moving
// averages, normalized by the prediction day's close): a stock's feature
// column depends only on that stock's own price history, so an intraday
// tick for stock i invalidates exactly stock i's column — updates cost
// O(changed stocks × window × F) per batch, and a day rollover costs one
// O(N) column sweep. Because the window keeps the same per-stock prefix
// sums WindowDataset builds (append-only; a tick rewrites only the last
// row) and recomputes columns with the same expression, the incremental
// tensor is BIT-IDENTICAL to
//   WindowDataset(PanelSnapshot(), window, num_features).Features(day())
// at every tick — tests/stream_checker.h enforces this at every thread
// count (column updates parallelize per stock; no cross-stock reduction
// exists, so thread count cannot change a bit).
#ifndef RTGCN_STREAM_FEATURE_WINDOW_H_
#define RTGCN_STREAM_FEATURE_WINDOW_H_

#include <cstdint>
#include <vector>

#include "market/dataset.h"
#include "stream/events.h"
#include "tensor/tensor.h"

namespace rtgcn::stream {

/// \brief Incrementally maintained feature window over a growing panel.
class SlidingFeatureWindow {
 public:
  /// `window` and `num_features` as in market::WindowDataset (features are
  /// a prefix of kFeaturePeriods).
  SlidingFeatureWindow(int64_t num_slots, int64_t window,
                       int64_t num_features);

  int64_t num_slots() const { return num_slots_; }
  int64_t window() const { return window_; }
  int64_t num_features() const { return num_features_; }

  /// Index of the newest (possibly still intraday) day; -1 while empty.
  int64_t day() const { return days_ - 1; }
  int64_t num_days() const { return days_; }

  /// Earliest day with enough history for a full feature window (same
  /// formula as WindowDataset::first_day).
  int64_t first_valid_day() const {
    return window_ - 1 + market::kFeaturePeriods[num_features_ - 1] - 1;
  }
  bool ready() const { return day() >= first_valid_day(); }

  /// Appends a completed day at its closing prices, O(N).
  void PushDay(const std::vector<float>& close);

  /// Opens a new intraday day priced at the previous close (no trades
  /// yet), O(N). Ticks then move individual stocks.
  void OpenDay();

  /// Applies one intraday batch to the open day: O(|ticks| × window × F).
  void ApplyTicks(const TickBatch& batch);

  /// Settles the open day at the official close, O(N). Equivalent to (but
  /// cheaper than) a tick for every slot.
  void CloseDay(const std::vector<float>& close);

  /// Feature tensor [window, N, F] for the current day — always current;
  /// returns a copy of the maintained buffer.
  Tensor Features() const { return features_; }

  /// Features gathered to a slot subset, [window, |slots|, F] — the view a
  /// model trained on that sub-universe scores. Per-stock feature math
  /// commutes with gathering, so this equals WindowDataset over the
  /// gathered panel bit-for-bit.
  Tensor FeaturesForSlots(const std::vector<int64_t>& slots) const;

  /// Latest price of each slot (intraday for the open day).
  const std::vector<float>& prices() const { return prices_back_; }

  /// Copy of the full price panel [num_days, N] (current day at its latest
  /// intraday prices) — the reference input for checkers and oracles.
  Tensor PanelSnapshot() const;

  /// Panel gathered to a slot subset, [num_days, |slots|] — batch-training
  /// input for a sub-universe refit.
  Tensor PanelForSlots(const std::vector<int64_t>& slots) const;

 private:
  void RecomputeColumn(int64_t slot);
  void RecomputeAllColumns();
  float MovingAverage(int64_t t, int64_t slot, int64_t period) const;

  int64_t num_slots_;
  int64_t window_;
  int64_t num_features_;

  int64_t days_ = 0;     ///< rows in the panel (including the open day)
  bool day_open_ = false;

  /// Row-major [days, N] price panel; grows by one row per day.
  std::vector<float> panel_;
  /// Row-major [days + 1, N] per-stock prefix sums — same layout and
  /// accumulation order as WindowDataset's, so MA values match bit-for-bit.
  std::vector<double> prefix_;
  /// Latest prices (last panel row), kept separately for cheap access.
  std::vector<float> prices_back_;

  /// Maintained [window, N, F] features for the current day; valid once
  /// ready().
  Tensor features_;
};

}  // namespace rtgcn::stream

#endif  // RTGCN_STREAM_FEATURE_WINDOW_H_
