// Metrics registry: named counters, gauges and fixed-bucket histograms.
//
// Registration (GetCounter/GetGauge/GetHistogram) takes a mutex once per
// metric name and returns a stable pointer; every mutation on the returned
// object is a relaxed atomic operation, so hot paths never lock. Readers
// (DumpText, Snapshot) sum the atomics without stopping writers: the result
// is consistent enough for monitoring, which is all it promises.
//
// The registry is dependency-free (std only) so any layer of the stack —
// tensor kernels, the thread pool, the trainer, the serving front-end —
// can publish metrics without creating a library cycle.
#ifndef RTGCN_OBS_REGISTRY_H_
#define RTGCN_OBS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rtgcn::obs {

/// \brief Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

  // std::atomic-compatible surface, so code that held a bare
  // std::atomic<uint64_t> (the pre-obs serve::Metrics) migrates without
  // touching its call sites.
  uint64_t fetch_add(uint64_t n,
                     std::memory_order = std::memory_order_relaxed) {
    return v_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t load(std::memory_order = std::memory_order_relaxed) const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> v_{0};
};

/// \brief Last-write-wins scalar (learning rate, queue depth, ...).
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

/// \brief Bucket layout of a histogram, fixed at registration.
///
/// `lower_bounds[i]` is the inclusive lower bound of bucket i; bucket i
/// counts samples in [lower_bounds[i], lower_bounds[i+1]) and the last
/// bucket is unbounded above. lower_bounds[0] must be 0.
struct BucketSpec {
  std::vector<uint64_t> lower_bounds;

  /// Power-of-two buckets: bucket 0 = {0}, bucket b = [2^(b-1), 2^b) for
  /// b in [1, num_buckets). The classic microsecond-latency layout.
  static BucketSpec Exponential2(int num_buckets);

  /// One exact bucket per integer in [0, max_value] plus an overflow
  /// bucket for anything larger (batch sizes, retry counts, ...).
  static BucketSpec LinearUnit(int64_t max_value);
};

/// \brief Fixed-bucket histogram with lock-free recording.
///
/// Percentiles interpolate linearly inside the winning bucket, so they are
/// accurate to within one bucket's width.
class Histogram {
 public:
  explicit Histogram(BucketSpec spec);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const;
  /// Value below which fraction `p` (clamped to [0, 1]) of the samples
  /// fall; 0 when empty.
  double Percentile(double p) const;

  int num_buckets() const { return static_cast<int>(bounds_.size()); }
  uint64_t BucketLowerBound(int b) const {
    return bounds_[static_cast<size_t>(b)];
  }
  uint64_t BucketCount(int b) const {
    return buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
  }

 private:
  std::vector<uint64_t> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// \brief Point-in-time copy of one histogram (buckets included, so deltas
/// between snapshots still support percentile queries).
struct HistogramSnapshot {
  std::string name;
  std::vector<uint64_t> lower_bounds;
  std::vector<uint64_t> buckets;
  uint64_t count = 0;
  uint64_t sum = 0;

  double Mean() const;
  double Percentile(double p) const;
};

/// \brief Point-in-time copy of a whole registry. `DeltaSince` turns two
/// cumulative snapshots into the activity between them — how the trainer
/// reports "what this Fit call did" from process-global counters.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Counter values and histogram buckets minus `base` (clamped at zero;
  /// metrics absent from `base` pass through). Gauges keep their current
  /// value — deltas of last-write-wins scalars are meaningless.
  RegistrySnapshot DeltaSince(const RegistrySnapshot& base) const;

  uint64_t CounterValue(const std::string& name, uint64_t def = 0) const;
  const HistogramSnapshot* FindHistogram(const std::string& name) const;

  /// Multi-line `name value` rendering (same layout as Registry::DumpText).
  std::string ToText() const;
};

/// \brief Named metrics, created on first use, stable addresses for life.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the metric registered under `name`, creating it on first use.
  /// For histograms the spec is only consulted at creation; later calls
  /// with a different spec return the existing histogram unchanged.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name, const BucketSpec& spec);

  /// Prometheus-style text exposition: `name value` for counters/gauges,
  /// `name_bucket{le="..."} cum` + `name_sum` + `name_count` for
  /// histograms (empty buckets elided). Names are emitted in sorted order.
  std::string DumpText() const;

  RegistrySnapshot Snapshot() const;

  /// The process-wide registry (training, checkpointing, pool metrics).
  /// Subsystems that need isolated accounting (one serve::Metrics per
  /// server under test) create their own Registry instances instead.
  static Registry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace rtgcn::obs

#endif  // RTGCN_OBS_REGISTRY_H_
