// Ranking metrics for stock selection (paper §V-B3): MRR and IRR-k.
#ifndef RTGCN_RANK_METRICS_H_
#define RTGCN_RANK_METRICS_H_

#include <vector>

#include "tensor/tensor.h"

namespace rtgcn::rank {

/// Indices of `scores` sorted descending (ties broken by lower index).
std::vector<int64_t> RankDescending(const Tensor& scores);

/// Indices of the k highest-scoring stocks. k is clamped into [0, N], so
/// k <= 0 yields an empty pick list and k > N returns all stocks.
std::vector<int64_t> TopK(const Tensor& scores, int64_t k);

/// Reciprocal rank of the predicted top-1 stock within the ground-truth
/// return ordering. Averaged over days this is the paper's MRR ("the MRR
/// result of the top-1 stock in a ranking list"). An empty score tensor
/// has no top-1 pick and scores 0.
double ReciprocalRankTop1(const Tensor& scores, const Tensor& labels);

/// Mean realized return of the predicted top-k stocks — one day's IRR
/// contribution under the buy-at-t / sell-at-t+1 strategy (§V-B1), assuming
/// capital is split equally across the k picks. Degenerate inputs (k <= 0
/// or an empty universe) select nothing and return 0.
double TopKReturn(const Tensor& scores, const Tensor& labels, int64_t k);

}  // namespace rtgcn::rank

#endif  // RTGCN_RANK_METRICS_H_
