// Span tracer: RAII scopes recorded into per-thread ring buffers and
// exported as Chrome-trace JSON (open in chrome://tracing or Perfetto).
//
// Cost model:
//  * tracing disabled (the default): constructing a Span is ONE relaxed
//    atomic load and a branch — cheap enough to leave in tensor kernels,
//    the autograd backward loop and the thread-pool dispatch path.
//  * tracing enabled: span end takes the calling thread's ring mutex,
//    which is uncontended except while an export is copying that ring.
//
// Each thread owns a fixed-capacity ring (kRingCapacity completed spans);
// when it wraps, the oldest spans are overwritten and counted as dropped.
// Rings outlive their threads (shared ownership from a global list), so an
// export after the workers have joined still sees their spans.
//
// Enablement: Tracer::SetEnabled(true), or the RTGCN_TRACE environment
// variable — "1"/"true" enables tracing; any other non-empty value both
// enables it and names a file the trace is exported to at process exit.
#ifndef RTGCN_OBS_TRACE_H_
#define RTGCN_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/clock.h"

namespace rtgcn::obs {

namespace internal {
extern std::atomic<bool> g_trace_enabled;
// Appends one completed span to the calling thread's ring.
void RecordSpan(const char* name, const char* cat, uint64_t start_us,
                uint64_t end_us);
}  // namespace internal

/// \brief Process-wide span collector.
class Tracer {
 public:
  static bool enabled() {
    return internal::g_trace_enabled.load(std::memory_order_relaxed);
  }
  static void SetEnabled(bool enabled);

  /// Drops every recorded span (rings stay allocated).
  static void Clear();

  /// Completed spans currently held across all rings.
  static size_t EventCount();
  /// Spans overwritten by ring wraparound since the last Clear().
  static size_t DroppedCount();

  /// Writes the Chrome trace-event JSON document ({"traceEvents": [...]}).
  /// Safe to call while spans are still being recorded; concurrent spans
  /// land in the export or don't, atomically per span.
  static void WriteChromeJson(std::ostream& os);

  /// WriteChromeJson to `path`; false (with *error set) on I/O failure.
  static bool ExportChromeJson(const std::string& path, std::string* error);
};

/// \brief RAII span: times its scope under a static name.
///
/// `name` and `cat` must be string literals (or otherwise outlive the
/// tracer) — the ring stores the pointers, never a copy.
class Span {
 public:
  explicit Span(const char* name, const char* cat = "app") {
    if (!Tracer::enabled()) return;
    name_ = name;
    cat_ = cat;
    start_us_ = NowMicros();
  }
  ~Span() {
    if (name_ != nullptr) {
      internal::RecordSpan(name_, cat_, start_us_, NowMicros());
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  uint64_t start_us_ = 0;
};

/// \brief One event parsed back out of a Chrome trace JSON document.
struct TraceEventRecord {
  std::string name;
  std::string cat;
  std::string ph;
  double ts = 0;   ///< start, µs
  double dur = 0;  ///< duration, µs (complete events)
  int64_t pid = 0;
  int64_t tid = 0;
};

/// Parses a Chrome trace JSON document (the object form with a
/// "traceEvents" array, or a bare array). Returns false and sets *error on
/// malformed JSON or a missing/ill-typed traceEvents array. Used by the
/// trace_export tool and by tests to verify export well-formedness.
bool ParseChromeTraceJson(const std::string& json,
                          std::vector<TraceEventRecord>* events,
                          std::string* error);

}  // namespace rtgcn::obs

#endif  // RTGCN_OBS_TRACE_H_
