file(REMOVE_RECURSE
  "librtgcn_tensor.a"
)
