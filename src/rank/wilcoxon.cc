#include "rank/wilcoxon.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rtgcn::rank {

double NormalSf(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

namespace {

// Signed-rank statistic machinery shared by both tests. `diffs` are the
// (already centered) differences.
double SignedRankPValue(std::vector<double> diffs) {
  diffs.erase(std::remove(diffs.begin(), diffs.end(), 0.0), diffs.end());
  const size_t n = diffs.size();
  if (n == 0) return 1.0;

  // Rank |d| ascending with midranks for ties.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return std::fabs(diffs[a]) < std::fabs(diffs[b]);
  });
  std::vector<double> ranks(n);
  double tie_correction = 0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n &&
           std::fabs(diffs[order[j + 1]]) == std::fabs(diffs[order[i]])) {
      ++j;
    }
    const double midrank = (static_cast<double>(i) + j) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = midrank;
    const double t = static_cast<double>(j - i + 1);
    tie_correction += t * t * t - t;
    i = j + 1;
  }

  // W+ = sum of ranks of positive differences.
  double w_plus = 0;
  for (size_t k = 0; k < n; ++k) {
    if (diffs[k] > 0) w_plus += ranks[k];
  }
  const double dn = static_cast<double>(n);
  const double mean = dn * (dn + 1.0) / 4.0;
  double var = dn * (dn + 1.0) * (2.0 * dn + 1.0) / 24.0 -
               tie_correction / 48.0;
  if (var <= 0) return w_plus > mean ? 0.0 : 1.0;
  // Continuity correction, upper tail (H1: shifted positive).
  const double z = (w_plus - mean - 0.5) / std::sqrt(var);
  return NormalSf(z);
}

}  // namespace

double PairedWilcoxonPValue(const std::vector<double>& a,
                            const std::vector<double>& b) {
  RTGCN_CHECK_EQ(a.size(), b.size());
  std::vector<double> diffs(a.size());
  for (size_t i = 0; i < a.size(); ++i) diffs[i] = a[i] - b[i];
  return SignedRankPValue(std::move(diffs));
}

double OneSampleWilcoxonPValue(const std::vector<double>& x, double mu) {
  std::vector<double> diffs(x.size());
  for (size_t i = 0; i < x.size(); ++i) diffs[i] = x[i] - mu;
  return SignedRankPValue(std::move(diffs));
}

}  // namespace rtgcn::rank
