# Empty compiler generated dependencies file for rtgcn_nn.
# This may be replaced when dependencies are built.
