#include "obs/clock.h"

#include <atomic>
#include <chrono>

namespace rtgcn::obs {

namespace {
std::atomic<uint64_t (*)()> g_clock_override{nullptr};
}  // namespace

uint64_t NowMicros() {
  if (uint64_t (*fn)() = g_clock_override.load(std::memory_order_relaxed)) {
    return fn();
  }
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t ElapsedMicrosSince(uint64_t start_us) {
  const uint64_t now = NowMicros();
  return now >= start_us ? now - start_us : 0;
}

void SetClockForTesting(uint64_t (*fn)()) {
  g_clock_override.store(fn, std::memory_order_relaxed);
}

}  // namespace rtgcn::obs
