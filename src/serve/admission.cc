#include "serve/admission.h"

#include <algorithm>

namespace rtgcn::serve {

const char* AdmissionPolicyName(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kRejectFast: return "reject";
    case AdmissionPolicy::kBlockWithTimeout: return "block";
  }
  return "unknown";
}

bool ParseAdmissionPolicy(const std::string& name, AdmissionPolicy* out) {
  if (name == "reject") {
    *out = AdmissionPolicy::kRejectFast;
    return true;
  }
  if (name == "block") {
    *out = AdmissionPolicy::kBlockWithTimeout;
    return true;
  }
  return false;
}

AdmissionController::AdmissionController(Options options)
    : options_(options) {
  options_.capacity = std::max<int64_t>(options_.capacity, 1);
}

Status AdmissionController::Admit(
    std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  if (draining_) {
    return Status::Unavailable("draining: no new ", options_.what,
                               " admitted");
  }
  if (in_use_ < options_.capacity) {
    ++in_use_;
    return Status::OK();
  }
  if (options_.policy == AdmissionPolicy::kRejectFast ||
      options_.block_timeout_ms <= 0) {
    return Status::Unavailable(options_.what, " at capacity (",
                               options_.capacity, ")");
  }
  auto wake = std::chrono::steady_clock::now() +
              std::chrono::milliseconds(options_.block_timeout_ms);
  const bool deadline_binds = deadline < wake;
  if (deadline_binds) wake = deadline;
  const bool got_slot = cv_.wait_until(lock, wake, [this] {
    return draining_ || in_use_ < options_.capacity;
  });
  if (draining_) {
    return Status::Unavailable("draining: no new ", options_.what,
                               " admitted");
  }
  if (!got_slot) {
    if (deadline_binds) {
      return Status::DeadlineExceeded("deadline passed while waiting for a ",
                                      options_.what, " slot");
    }
    return Status::Unavailable(options_.what, " still at capacity (",
                               options_.capacity, ") after ",
                               options_.block_timeout_ms, "ms");
  }
  ++in_use_;
  return Status::OK();
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (in_use_ > 0) --in_use_;
  }
  cv_.notify_one();
}

void AdmissionController::CloseForDrain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  cv_.notify_all();
}

void AdmissionController::Reopen() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = false;
}

int64_t AdmissionController::in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_use_;
}

}  // namespace rtgcn::serve
