// Reproduces Table VI: wiki relations vs industry relations ablation on the
// NASDAQ and NYSE markets (Rank_LSTM is relation-blind, so its row is the
// control — identical under both relation subsets).
//
// Flags: --reps 2  --epochs 8  --scale 1.0
#include <cstdio>

#include "bench_common.h"

namespace rtgcn::bench {
namespace {

int Run(int argc, char** argv) {
  auto flags = ParseBenchFlags(argc, argv);
  const int64_t reps = flags.GetInt("reps", 1);
  const int64_t epochs = flags.GetInt("epochs", 8);
  const double scale = ScaleFromFlags(flags);

  for (const market::MarketSpec& spec :
       {market::NasdaqSpec(scale), market::NyseSpec(scale)}) {
    market::MarketData data = market::BuildMarket(spec);
    std::printf("=== Table VI — %s: wiki vs industry relations ===\n",
                spec.name.c_str());
    std::printf("relation ratios: wiki %.1f%%, industry %.1f%% "
                "(paper: 0.3-0.4%% / 5.4-6.9%%)\n",
                100.0 * data.relations.WikiOnly().RelationRatio(),
                100.0 * data.relations.IndustryOnly().RelationRatio());

    harness::TablePrinter table({"Model", "W MRR", "W IRR-1", "W IRR-5",
                                 "W IRR-10", "I MRR", "I IRR-1", "I IRR-5",
                                 "I IRR-10"});
    for (const std::string& model :
         {"Rank_LSTM", "RT-GCN (U)", "RT-GCN (W)", "RT-GCN (T)"}) {
      std::vector<std::string> row = {model};
      for (auto subset : {baselines::RelationSubset::kWikiOnly,
                          baselines::RelationSubset::kIndustryOnly}) {
        baselines::ExperimentConfig config;
        config.model = model;
        config.train.epochs = epochs;
        config.relations = subset;
        baselines::RepeatedMetrics m =
            baselines::RunRepeated(data, config, reps);
        row.push_back(Fmt3(m.MeanMrr()));
        row.push_back(Fmt2(m.MeanIrr(1)));
        row.push_back(Fmt2(m.MeanIrr(5)));
        row.push_back(Fmt2(m.MeanIrr(10)));
      }
      table.AddRow(std::move(row));
      std::printf("  done: %s\n", model.c_str());
      std::fflush(stdout);
    }
    table.Print();
    std::printf(
        "\nExpected shape (paper Table VI): every RT-GCN strategy beats "
        "Rank_LSTM under either relation family, and industry relations "
        "(denser) beat wiki relations on most metrics.\n\n");
  }
  return 0;
}

}  // namespace
}  // namespace rtgcn::bench

int main(int argc, char** argv) { return rtgcn::bench::Run(argc, argv); }
