// Tape-based reverse-mode automatic differentiation.
//
// A Variable wraps a Tensor value plus (lazily allocated) gradient storage
// and a closure that back-propagates an incoming gradient to its parents.
// The graph is dynamic: each differentiable op (autograd/ops.h) allocates a
// fresh output Variable holding shared_ptrs to its inputs, so releasing the
// final loss Variable frees the whole tape while leaf parameters survive.
#ifndef RTGCN_AUTOGRAD_VARIABLE_H_
#define RTGCN_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace rtgcn::ag {

class Variable;
using VarPtr = std::shared_ptr<Variable>;

/// \brief Node in the autodiff tape.
class Variable {
 public:
  explicit Variable(Tensor value, bool requires_grad = false)
      : value(std::move(value)), requires_grad(requires_grad) {}

  /// Forward value.
  Tensor value;
  /// Accumulated gradient (same shape as value). Undefined until needed.
  Tensor grad;
  /// Leaves with requires_grad are optimizable parameters.
  bool requires_grad;
  /// Inputs of the op that produced this variable (empty for leaves).
  std::vector<VarPtr> parents;
  /// Propagates `grad_out` (d loss / d this) into parents' grads.
  std::function<void(const Tensor& grad_out)> backward_fn;
  /// Static name of the producing op ("leaf" for leaves/constants); lets
  /// the finite-check mode (autograd/finite_check.h) name the offender.
  const char* op_name = "leaf";

  const Shape& shape() const { return value.shape(); }
  int64_t numel() const { return value.numel(); }

  bool is_leaf() const { return parents.empty() && !backward_fn; }

  /// Adds `g` into this->grad, reducing broadcast axes as needed.
  void AccumulateGrad(const Tensor& g);

  /// Drops accumulated gradient (between optimizer steps).
  void ZeroGrad() { grad = Tensor(); }
};

/// Creates a leaf variable (e.g. a parameter when requires_grad = true).
VarPtr MakeVariable(Tensor value, bool requires_grad = false);

/// Creates a non-differentiable constant.
VarPtr Constant(Tensor value);

/// Runs reverse-mode accumulation from `root` (any shape; the seed gradient
/// is all-ones, so for a scalar loss this is d loss / d leaf).
void Backward(const VarPtr& root);

/// \brief Global switch that disables tape construction (inference mode).
class GradMode {
 public:
  static bool enabled();
  static void set_enabled(bool enabled);
};

/// RAII guard: disables gradient tracking for its scope.
class NoGradGuard {
 public:
  NoGradGuard() : prev_(GradMode::enabled()) { GradMode::set_enabled(false); }
  ~NoGradGuard() { GradMode::set_enabled(prev_); }
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

}  // namespace rtgcn::ag

#endif  // RTGCN_AUTOGRAD_VARIABLE_H_
