# Empty compiler generated dependencies file for rtgcn_tensor.
# This may be replaced when dependencies are built.
