// Daily buy-sell backtester (paper §V-B1): buy the top-N predicted stocks
// at day t, sell at day t+1, accumulate the return ratios.
#ifndef RTGCN_RANK_BACKTEST_H_
#define RTGCN_RANK_BACKTEST_H_

#include <map>
#include <vector>

#include "rank/metrics.h"
#include "tensor/tensor.h"

namespace rtgcn::rank {

/// \brief Aggregated evaluation over a test period.
struct BacktestResult {
  double mrr = 0;                      ///< mean reciprocal rank (top-1)
  std::map<int64_t, double> irr;       ///< k -> cumulative IRR-k
  /// k -> cumulative IRR curve, one point per test day (Figure 6).
  std::map<int64_t, std::vector<double>> irr_curve;
  int64_t num_days = 0;
};

/// \brief Streams (scores, labels) pairs day by day and accumulates metrics.
class Backtester {
 public:
  explicit Backtester(std::vector<int64_t> top_ks = {1, 5, 10});

  /// Records one test day. `scores` and `labels` are [N].
  void AddDay(const Tensor& scores, const Tensor& labels);

  /// Records a whole test period at once. Per-day ranking metrics are
  /// computed on the thread pool (days are independent) and folded into
  /// the running sums in day order, so the result is identical to calling
  /// AddDay day by day.
  void AddDays(const std::vector<Tensor>& scores,
               const std::vector<Tensor>& labels);

  BacktestResult Finalize() const;

 private:
  std::vector<int64_t> top_ks_;
  double mrr_sum_ = 0;
  int64_t days_ = 0;
  std::map<int64_t, double> irr_sum_;
  std::map<int64_t, std::vector<double>> curves_;
};

/// Cumulative return-ratio curve of a buy-and-hold market index with levels
/// `index_levels` over test days [begin, end) — the Fig. 6 yardstick.
std::vector<double> IndexReturnCurve(const std::vector<double>& index_levels,
                                     int64_t begin, int64_t end);

}  // namespace rtgcn::rank

#endif  // RTGCN_RANK_BACKTEST_H_
