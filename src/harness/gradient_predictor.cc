#include "harness/gradient_predictor.h"

#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/loss.h"

namespace rtgcn::harness {

ag::VarPtr GradientPredictor::Loss(const ag::VarPtr& scores,
                                   const Tensor& labels) {
  return core::CombinedLoss(scores, labels, alpha());
}

double GradientPredictor::TrainStep(const Tensor& features,
                                    const Tensor& labels,
                                    ag::Optimizer* optimizer,
                                    const TrainOptions& options, Rng* rng) {
  optimizer->ZeroGrad();
  ag::VarPtr scores = Forward(features, rng);
  ag::VarPtr loss = Loss(scores, labels);
  ag::Backward(loss);
  optimizer->ClipGradNorm(options.grad_clip);
  optimizer->Step();
  return loss->value.item();
}

void GradientPredictor::Fit(const market::WindowDataset& data,
                            const std::vector<int64_t>& train_days,
                            const TrainOptions& options) {
  RTGCN_CHECK(!train_days.empty());
  rng_ = std::make_unique<Rng>(options.seed);
  nn::Module* mod = module();
  mod->SetTraining(true);
  ag::Adam optimizer(mod->Parameters(), options.learning_rate, 0.9f, 0.999f,
                     1e-8f, options.weight_decay);

  Stopwatch watch;
  std::vector<int64_t> days = train_days;
  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng_->Shuffle(&days);
    double epoch_loss = 0;
    for (int64_t day : days) {
      epoch_loss += TrainStep(data.Features(day), data.Labels(day), &optimizer,
                              options, rng_.get());
    }
    if (options.verbose) {
      RTGCN_LOG(Info) << name() << " epoch " << epoch << " loss "
                      << epoch_loss / static_cast<double>(days.size());
    }
  }
  fit_stats_.train_seconds = watch.ElapsedSeconds();
  fit_stats_.epochs = options.epochs;
  mod->SetTraining(false);
}

Tensor GradientPredictor::Predict(const market::WindowDataset& data,
                                  int64_t day) {
  ag::NoGradGuard no_grad;
  module()->SetTraining(false);
  if (!rng_) rng_ = std::make_unique<Rng>(1);
  return Forward(data.Features(day), rng_.get())->value;
}

}  // namespace rtgcn::harness
