// CRC-32 (IEEE 802.3 / zlib polynomial 0xEDB88320) used to protect
// checkpoint records against torn writes and bit rot. Detects all
// single-bit errors and all burst errors up to 32 bits.
#ifndef RTGCN_COMMON_CRC32_H_
#define RTGCN_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rtgcn {

/// CRC-32 of `len` bytes at `data`, continuing from `crc` (pass 0 to start
/// a new checksum; feed the previous return value to checksum a buffer in
/// pieces).
uint32_t Crc32(const void* data, size_t len, uint32_t crc = 0);

inline uint32_t Crc32(std::string_view s, uint32_t crc = 0) {
  return Crc32(s.data(), s.size(), crc);
}

}  // namespace rtgcn

#endif  // RTGCN_COMMON_CRC32_H_
