// Multi-hot stock relation tensor A ∈ {0,1}^{N×N×K} (paper §III-A).
//
// Relations are symmetric and sparse, so we store an edge list with the set
// of relation-type indices per stock pair instead of a dense rank-3 tensor.
#ifndef RTGCN_GRAPH_RELATION_TENSOR_H_
#define RTGCN_GRAPH_RELATION_TENSOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace rtgcn::graph {

/// \brief Sparse symmetric N×N×K multi-hot relation structure.
class RelationTensor {
 public:
  /// Default: empty 0-stock tensor (placeholder until assigned).
  RelationTensor() : RelationTensor(0, 0) {}

  RelationTensor(int64_t num_stocks, int64_t num_relation_types)
      : num_stocks_(num_stocks), num_types_(num_relation_types) {}

  int64_t num_stocks() const { return num_stocks_; }
  int64_t num_relation_types() const { return num_types_; }

  /// Adds relation `type` between stocks i and j (symmetric, i != j).
  /// Adding the same (i, j, type) twice is a no-op.
  Status AddRelation(int64_t i, int64_t j, int64_t type);

  /// Removes relation `type` from edge (i, j); the edge vanishes once its
  /// last type is removed. Removing an absent relation is a no-op. Used by
  /// the streaming layer when links decay (stream::DynamicGraph).
  Status RemoveRelation(int64_t i, int64_t j, int64_t type);

  bool HasEdge(int64_t i, int64_t j) const;

  /// True when relation `type` already exists on edge (i, j).
  bool HasRelation(int64_t i, int64_t j, int64_t type) const;

  /// Relation-type indices on edge (i, j); empty when no edge.
  std::vector<int32_t> Types(int64_t i, int64_t j) const;

  /// Number of connected unordered pairs.
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }

  /// Fraction of connected pairs among all N(N-1)/2 pairs (Table III's
  /// "relation ratio").
  double RelationRatio() const;

  /// Dense binary edge mask [N, N] (1 where some relation exists; zero
  /// diagonal). This is the Uniform strategy's R(A), Eq. (3).
  Tensor DenseMask() const;

  /// Dense per-type slice [N, N] for relation `type`.
  Tensor DenseTypeSlice(int64_t type) const;

  /// Multi-hot vector count on edge (i, j) summed over types.
  int64_t TypeCount(int64_t i, int64_t j) const {
    return static_cast<int64_t>(Types(i, j).size());
  }

  /// \brief One undirected edge with its relation types.
  struct Edge {
    int64_t i;
    int64_t j;
    std::vector<int32_t> types;
  };

  /// All edges with i < j, in deterministic (i, j) order.
  ///
  /// The enumeration is memoized: the first call after a mutation sorts the
  /// hash map into a snapshot, later calls return the same snapshot and
  /// bump the `graph.sparse.rebuild_reuse` counter — repeated CSR
  /// (re)builds over an unchanged tensor skip the enumeration entirely.
  /// The reference stays valid until the next AddRelation/RemoveRelation
  /// (copies of the tensor share the snapshot; it is immutable).
  /// Not safe to call concurrently with a mutation (first concurrent
  /// const calls are fine only after the cache is populated).
  const std::vector<Edge>& EdgeList() const;

  /// Keeps only relation types in [type_begin, type_end); used for the
  /// wiki-vs-industry ablation (Table VI). Edges left with no types vanish.
  /// Surviving types are compacted: type t becomes t - type_begin and the
  /// result reports num_relation_types() == type_end - type_begin, so
  /// models built on the view size their per-type weight vectors to the
  /// types that can actually occur (no dead `w` entries).
  RelationTensor FilterTypes(int64_t type_begin, int64_t type_end) const;

 private:
  int64_t Key(int64_t i, int64_t j) const {
    if (i > j) std::swap(i, j);
    return i * num_stocks_ + j;
  }

  int64_t num_stocks_;
  int64_t num_types_;
  std::unordered_map<int64_t, std::vector<int32_t>> edges_;
  /// Memoized EdgeList() snapshot; reset by mutations. Shared (not deep
  /// copied) across tensor copies — the pointee is immutable.
  mutable std::shared_ptr<const std::vector<Edge>> edge_list_cache_;
};

}  // namespace rtgcn::graph

#endif  // RTGCN_GRAPH_RELATION_TENSOR_H_
