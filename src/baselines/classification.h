// Shared helpers for the classification baselines (ARIMA, A-LSTM):
// return-ratio → {down, neutral, up} labels and cross-entropy loss.
#ifndef RTGCN_BASELINES_CLASSIFICATION_H_
#define RTGCN_BASELINES_CLASSIFICATION_H_

#include <vector>

#include "autograd/ops.h"

namespace rtgcn::baselines {

inline constexpr int kClassDown = 0;
inline constexpr int kClassNeutral = 1;
inline constexpr int kClassUp = 2;
inline constexpr float kTrendThreshold = 2e-3f;  // ±0.2 % daily move

/// Maps return ratios [N] to trend classes.
std::vector<int> TrendClasses(const Tensor& labels,
                              float threshold = kTrendThreshold);

/// Mean cross-entropy of `logits` [N, C] against integer classes.
ag::VarPtr CrossEntropy(const ag::VarPtr& logits,
                        const std::vector<int>& classes);

/// Classification "score" P(up) - P(down) per stock from logits [N, 3].
Tensor ClassificationScores(const Tensor& logits);

}  // namespace rtgcn::baselines

#endif  // RTGCN_BASELINES_CLASSIFICATION_H_
