#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "graph/adjacency.h"
#include "graph/gat.h"
#include "graph/gcn.h"
#include "graph/hypergraph.h"
#include "graph/relation_tensor.h"
#include "obs/registry.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace rtgcn::graph {
namespace {

RelationTensor MakeTriangle() {
  // 4 stocks; triangle 0-1-2 with mixed types; 3 isolated.
  RelationTensor rel(4, 3);
  rel.AddRelation(0, 1, 0).Abort();
  rel.AddRelation(0, 1, 2).Abort();
  rel.AddRelation(1, 2, 1).Abort();
  rel.AddRelation(0, 2, 0).Abort();
  return rel;
}

TEST(RelationTensorTest, AddAndQuery) {
  RelationTensor rel = MakeTriangle();
  EXPECT_TRUE(rel.HasEdge(0, 1));
  EXPECT_TRUE(rel.HasEdge(1, 0));  // symmetric
  EXPECT_FALSE(rel.HasEdge(0, 3));
  EXPECT_FALSE(rel.HasEdge(2, 2));  // no self edges
  EXPECT_EQ(rel.Types(0, 1), (std::vector<int32_t>{0, 2}));
  EXPECT_EQ(rel.TypeCount(0, 1), 2);
  EXPECT_EQ(rel.num_edges(), 3);
}

TEST(RelationTensorTest, DuplicateAddIsNoOp) {
  RelationTensor rel(3, 2);
  rel.AddRelation(0, 1, 0).Abort();
  rel.AddRelation(1, 0, 0).Abort();
  EXPECT_EQ(rel.Types(0, 1).size(), 1u);
}

TEST(RelationTensorTest, InvalidArgumentsRejected) {
  RelationTensor rel(3, 2);
  EXPECT_FALSE(rel.AddRelation(0, 0, 0).ok());   // self edge
  EXPECT_FALSE(rel.AddRelation(0, 5, 0).ok());   // bad index
  EXPECT_FALSE(rel.AddRelation(0, 1, 7).ok());   // bad type
}

TEST(RelationTensorTest, RelationRatio) {
  RelationTensor rel = MakeTriangle();
  EXPECT_DOUBLE_EQ(rel.RelationRatio(), 3.0 / 6.0);
}

TEST(RelationTensorTest, DenseMaskSymmetricZeroDiagonal) {
  Tensor mask = MakeTriangle().DenseMask();
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(mask.at({i, i}), 0.0f);
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_EQ(mask.at({i, j}), mask.at({j, i}));
    }
  }
  EXPECT_EQ(mask.at({0, 1}), 1.0f);
  EXPECT_EQ(mask.at({0, 3}), 0.0f);
}

TEST(RelationTensorTest, DenseTypeSlice) {
  RelationTensor rel = MakeTriangle();
  Tensor t0 = rel.DenseTypeSlice(0);
  EXPECT_EQ(t0.at({0, 1}), 1.0f);
  EXPECT_EQ(t0.at({0, 2}), 1.0f);
  EXPECT_EQ(t0.at({1, 2}), 0.0f);
}

TEST(RelationTensorTest, FilterTypesDropsEmptyEdges) {
  RelationTensor rel = MakeTriangle();
  RelationTensor only2 = rel.FilterTypes(2, 3);
  EXPECT_TRUE(only2.HasEdge(0, 1));
  EXPECT_FALSE(only2.HasEdge(1, 2));
  EXPECT_FALSE(only2.HasEdge(0, 2));
  EXPECT_EQ(only2.num_edges(), 1);
}

// Regression: the filtered view used to keep the full original type count
// and the original (un-shifted) type indices, so Table VI ablation models
// sized their per-type weights to types that could never occur.
TEST(RelationTensorTest, FilterTypesCompactsTypeIndices) {
  RelationTensor rel = MakeTriangle();
  RelationTensor high = rel.FilterTypes(1, 3);  // keeps types {1, 2}
  EXPECT_EQ(high.num_relation_types(), 2);
  EXPECT_EQ(high.Types(0, 1), (std::vector<int32_t>{1}));  // was type 2
  EXPECT_EQ(high.Types(1, 2), (std::vector<int32_t>{0}));  // was type 1
  EXPECT_FALSE(high.HasEdge(0, 2));  // only had type 0

  RelationTensor low = rel.FilterTypes(0, 2);
  EXPECT_EQ(low.num_relation_types(), 2);
  EXPECT_EQ(low.Types(0, 1), (std::vector<int32_t>{0}));  // identity remap
}

TEST(RelationTensorTest, HasRelationChecksSpecificType) {
  RelationTensor rel = MakeTriangle();
  EXPECT_TRUE(rel.HasRelation(0, 1, 0));
  EXPECT_TRUE(rel.HasRelation(1, 0, 2));  // symmetric
  EXPECT_FALSE(rel.HasRelation(0, 1, 1));
  EXPECT_FALSE(rel.HasRelation(0, 3, 0));
  EXPECT_FALSE(rel.HasRelation(1, 1, 0));
}

TEST(RelationTensorTest, EdgeListDeterministicOrder) {
  auto edges = MakeTriangle().EdgeList();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_TRUE(edges[0].i == 0 && edges[0].j == 1);
  EXPECT_TRUE(edges[1].i == 0 && edges[1].j == 2);
  EXPECT_TRUE(edges[2].i == 1 && edges[2].j == 2);
}

TEST(RelationTensorTest, EdgeListMemoizedUntilMutation) {
  RelationTensor rel = MakeTriangle();
  auto* reuse =
      obs::Registry::Global().GetCounter("graph.sparse.rebuild_reuse");

  const uint64_t before = reuse->Value();
  const auto* first = &rel.EdgeList();  // enumerates
  const auto* again = &rel.EdgeList();  // cache hit
  EXPECT_EQ(first, again);
  EXPECT_EQ(reuse->Value(), before + 1);

  // A structural mutation invalidates the snapshot...
  rel.AddRelation(0, 1, 1).Abort();
  const auto& after_add = rel.EdgeList();
  EXPECT_EQ(reuse->Value(), before + 1);
  EXPECT_EQ(after_add[0].types, (std::vector<int32_t>{0, 1, 2}));

  // ...but a duplicate add is a no-op and keeps the cache.
  const auto* cached = &rel.EdgeList();
  rel.AddRelation(0, 1, 1).Abort();
  EXPECT_EQ(&rel.EdgeList(), cached);
}

TEST(RelationTensorTest, RemoveRelationDropsTypeThenEdge) {
  RelationTensor rel = MakeTriangle();
  rel.AddRelation(0, 1, 1).Abort();
  ASSERT_EQ(rel.num_edges(), 3);

  rel.RemoveRelation(1, 0, 2).Abort();  // symmetric indexing
  EXPECT_FALSE(rel.HasRelation(0, 1, 2));
  EXPECT_TRUE(rel.HasEdge(0, 1));  // types {0, 1} survive

  rel.RemoveRelation(0, 1, 0).Abort();
  rel.RemoveRelation(0, 1, 1).Abort();
  EXPECT_FALSE(rel.HasEdge(0, 1));  // last type removed → edge gone
  EXPECT_EQ(rel.num_edges(), 2);

  // Removing an absent relation is a no-op, out-of-range is an error.
  EXPECT_TRUE(rel.RemoveRelation(0, 1, 0).ok());
  EXPECT_FALSE(rel.RemoveRelation(0, 99, 0).ok());
  EXPECT_FALSE(rel.RemoveRelation(0, 0, 0).ok());

  // EdgeList reflects the removals (cache was invalidated).
  const auto& edges = rel.EdgeList();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_TRUE(edges[0].i == 0 && edges[0].j == 2);
  EXPECT_TRUE(edges[1].i == 1 && edges[1].j == 2);
}

// ---------------------------------------------------------------------------
// Normalization
// ---------------------------------------------------------------------------

TEST(AdjacencyTest, NormalizedRowsOfRegularGraphSumToOne) {
  // Complete graph K3: Ã row sums = 3, D̃ = 3I, Â = (A+I)/3.
  Tensor a = Tensor::Ones({3, 3});
  for (int64_t i = 0; i < 3; ++i) a.at({i, i}) = 0.0f;
  Tensor norm = NormalizedAdjacency(a);
  for (int64_t i = 0; i < 3; ++i) {
    float row = 0;
    for (int64_t j = 0; j < 3; ++j) row += norm.at({i, j});
    EXPECT_NEAR(row, 1.0f, 1e-5);
  }
}

TEST(AdjacencyTest, IsolatedNodeBecomesIdentityRow) {
  Tensor a = Tensor::Zeros({2, 2});
  Tensor norm = NormalizedAdjacency(a);
  EXPECT_TRUE(AllClose(norm, Tensor::Eye(2)));
}

TEST(AdjacencyTest, SymmetricOutput) {
  Rng rng(3);
  Tensor a = Tensor::Zeros({5, 5});
  for (int64_t i = 0; i < 5; ++i) {
    for (int64_t j = i + 1; j < 5; ++j) {
      if (rng.Bernoulli(0.5)) {
        a.at({i, j}) = 1.0f;
        a.at({j, i}) = 1.0f;
      }
    }
  }
  Tensor norm = NormalizedAdjacency(a);
  EXPECT_TRUE(AllClose(norm, Transpose(norm)));
}

// ---------------------------------------------------------------------------
// RelationEdgeWeights (Eq. 4 custom op)
// ---------------------------------------------------------------------------

TEST(RelationEdgeWeightsTest, ForwardValues) {
  RelationTensor rel = MakeTriangle();
  auto w = ag::MakeVariable(Tensor({3}, {0.5f, 1.0f, 2.0f}), true);
  auto b = ag::MakeVariable(Tensor({1}, {0.1f}), true);
  auto s = RelationEdgeWeights(rel, w, b);
  // Edge (0,1) has types {0, 2}: 0.5 + 2.0 + 0.1 = 2.6.
  EXPECT_NEAR(s->value.at({0, 1}), 2.6f, 1e-6);
  EXPECT_NEAR(s->value.at({1, 0}), 2.6f, 1e-6);
  // Edge (1,2) type {1}: 1.0 + 0.1.
  EXPECT_NEAR(s->value.at({1, 2}), 1.1f, 1e-6);
  // Diagonal: unit self weight; non-edges zero.
  EXPECT_NEAR(s->value.at({3, 3}), 1.0f, 1e-6);
  EXPECT_NEAR(s->value.at({0, 3}), 0.0f, 1e-6);
}

TEST(RelationEdgeWeightsTest, GradCheck) {
  RelationTensor rel = MakeTriangle();
  Rng rng(4);
  auto w = ag::MakeVariable(RandomGaussian({3}, 1.0f, 0.2f, &rng), true);
  auto b = ag::MakeVariable(Tensor({1}, {0.0f}), true);
  Tensor x = RandomGaussian({4, 2}, 0, 1, &rng);
  EXPECT_TRUE(ag::GradCheck(
      [&](const std::vector<ag::VarPtr>& in) {
        auto s = RelationEdgeWeights(rel, in[0], in[1]);
        return ag::SumAll(ag::Square(ag::MatMul(s, ag::Constant(x))));
      },
      {w, b}));
}

// ---------------------------------------------------------------------------
// GCN / GAT
// ---------------------------------------------------------------------------

TEST(GcnTest, IdentityAdjacencyReducesToLinear) {
  Rng rng(5);
  GcnLayer layer(Tensor::Eye(4), 3, 2, &rng, /*bias=*/false);
  Tensor x = RandomGaussian({4, 3}, 0, 1, &rng);
  ag::NoGradGuard no_grad;
  Tensor y = layer.Forward(ag::Constant(x))->value;
  // With Â = I, output = X Θ for whatever Θ was initialized; check shape
  // and linearity: f(2x) = 2 f(x).
  Tensor y2 = layer.Forward(ag::Constant(MulScalar(x, 2.0f)))->value;
  EXPECT_TRUE(AllClose(y2, MulScalar(y, 2.0f), 1e-4f, 1e-5f));
}

TEST(GcnTest, PropagatesNeighborInformation) {
  // Two connected nodes: moving node 1's features must change node 0's out.
  Tensor a({2, 2}, {0, 1, 1, 0});
  Rng rng(6);
  GcnLayer layer(NormalizedAdjacency(a), 2, 2, &rng);
  Tensor x = Tensor::Zeros({2, 2});
  ag::NoGradGuard no_grad;
  Tensor y0 = layer.Forward(ag::Constant(x))->value;
  x.at({1, 0}) = 5.0f;
  Tensor y1 = layer.Forward(ag::Constant(x))->value;
  EXPECT_FALSE(AllClose(Slice(y0, 0, 0, 1), Slice(y1, 0, 0, 1)));
}

TEST(MaskedSoftmaxTest, MaskedEntriesAreZeroRowsNormalized) {
  Tensor mask({2, 3}, {1, 1, 0, 0, 0, 0});
  auto scores = ag::Constant(Tensor({2, 3}, {1, 2, 50, 1, 2, 3}));
  auto soft = MaskedRowSoftmax(scores, mask);
  EXPECT_NEAR(soft->value.at({0, 2}), 0.0f, 1e-6);
  EXPECT_NEAR(soft->value.at({0, 0}) + soft->value.at({0, 1}), 1.0f, 1e-5);
  // Fully masked row: all zeros.
  for (int64_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(soft->value.at({1, j}), 0.0f, 1e-6);
  }
}

TEST(GatTest, AttentionRowsSumToOneOnNeighborhood) {
  RelationTensor rel = MakeTriangle();
  Rng rng(7);
  GatLayer gat(rel.DenseMask(), 3, 4, &rng);
  ag::NoGradGuard no_grad;
  gat.Forward(ag::Constant(RandomGaussian({4, 3}, 0, 1, &rng)));
  const Tensor& att = gat.last_attention();
  for (int64_t i = 0; i < 4; ++i) {
    float row = 0;
    for (int64_t j = 0; j < 4; ++j) row += att.at({i, j});
    EXPECT_NEAR(row, 1.0f, 1e-4);
  }
  // Non-edges (0,3) carry no attention (3 is isolated except self loop).
  EXPECT_NEAR(att.at({0, 3}), 0.0f, 1e-6);
  EXPECT_NEAR(att.at({3, 3}), 1.0f, 1e-4);
}

TEST(GatTest, GradientsReachAllParameters) {
  RelationTensor rel = MakeTriangle();
  Rng rng(8);
  GatLayer gat(rel.DenseMask(), 2, 3, &rng);
  auto x = ag::Constant(RandomGaussian({4, 2}, 0, 1, &rng));
  ag::Backward(ag::SumAll(ag::Square(gat.Forward(x))));
  for (const auto& p : gat.Parameters()) {
    EXPECT_TRUE(p->grad.defined());
  }
}

// ---------------------------------------------------------------------------
// Hypergraph
// ---------------------------------------------------------------------------

TEST(HypergraphTest, IncidenceShape) {
  Hypergraph hg(5);
  hg.AddHyperedge({0, 1, 2});
  hg.AddHyperedge({2, 3});
  hg.AddHyperedge({4});  // ignored: fewer than 2 members
  EXPECT_EQ(hg.num_hyperedges(), 2);
  Tensor h = hg.Incidence();
  EXPECT_EQ(h.shape(), (Shape{5, 2}));
  EXPECT_EQ(h.at({2, 0}), 1.0f);
  EXPECT_EQ(h.at({2, 1}), 1.0f);
  EXPECT_EQ(h.at({4, 0}), 0.0f);
}

TEST(HypergraphTest, PropagationRowsSumToOneForMembers) {
  Hypergraph hg(4);
  hg.AddHyperedge({0, 1, 2});
  Tensor p = hg.PropagationMatrix();
  // Members of a single shared hyperedge: row sums 1 (degrees all 1).
  for (int64_t i = 0; i < 3; ++i) {
    float row = 0;
    for (int64_t j = 0; j < 4; ++j) row += p.at({i, j});
    EXPECT_NEAR(row, 1.0f, 1e-5);
  }
  // Isolated node passes features through.
  EXPECT_NEAR(p.at({3, 3}), 1.0f, 1e-6);
}

TEST(HypergraphTest, PropagationSymmetric) {
  Hypergraph hg(6);
  hg.AddHyperedge({0, 1, 2, 3});
  hg.AddHyperedge({2, 3, 4});
  Tensor p = hg.PropagationMatrix();
  EXPECT_TRUE(AllClose(p, Transpose(p), 1e-5f, 1e-6f));
}

}  // namespace
}  // namespace rtgcn::graph
