
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/adjacency.cc" "src/graph/CMakeFiles/rtgcn_graph.dir/adjacency.cc.o" "gcc" "src/graph/CMakeFiles/rtgcn_graph.dir/adjacency.cc.o.d"
  "/root/repo/src/graph/gat.cc" "src/graph/CMakeFiles/rtgcn_graph.dir/gat.cc.o" "gcc" "src/graph/CMakeFiles/rtgcn_graph.dir/gat.cc.o.d"
  "/root/repo/src/graph/gcn.cc" "src/graph/CMakeFiles/rtgcn_graph.dir/gcn.cc.o" "gcc" "src/graph/CMakeFiles/rtgcn_graph.dir/gcn.cc.o.d"
  "/root/repo/src/graph/hypergraph.cc" "src/graph/CMakeFiles/rtgcn_graph.dir/hypergraph.cc.o" "gcc" "src/graph/CMakeFiles/rtgcn_graph.dir/hypergraph.cc.o.d"
  "/root/repo/src/graph/relation_tensor.cc" "src/graph/CMakeFiles/rtgcn_graph.dir/relation_tensor.cc.o" "gcc" "src/graph/CMakeFiles/rtgcn_graph.dir/relation_tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/rtgcn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/rtgcn_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rtgcn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rtgcn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
