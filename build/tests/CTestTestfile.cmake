# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;rtgcn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tensor_test "/root/repo/build/tests/tensor_test")
set_tests_properties(tensor_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;rtgcn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(autograd_test "/root/repo/build/tests/autograd_test")
set_tests_properties(autograd_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;11;rtgcn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nn_test "/root/repo/build/tests/nn_test")
set_tests_properties(nn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;rtgcn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(graph_test "/root/repo/build/tests/graph_test")
set_tests_properties(graph_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;13;rtgcn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(market_test "/root/repo/build/tests/market_test")
set_tests_properties(market_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;14;rtgcn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;rtgcn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(rank_test "/root/repo/build/tests/rank_test")
set_tests_properties(rank_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;16;rtgcn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baselines_test "/root/repo/build/tests/baselines_test")
set_tests_properties(baselines_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;17;rtgcn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;rtgcn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(serialize_test "/root/repo/build/tests/serialize_test")
set_tests_properties(serialize_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;19;rtgcn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;20;rtgcn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(harness_test "/root/repo/build/tests/harness_test")
set_tests_properties(harness_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;21;rtgcn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(edge_case_test "/root/repo/build/tests/edge_case_test")
set_tests_properties(edge_case_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;22;rtgcn_add_test;/root/repo/tests/CMakeLists.txt;0;")
