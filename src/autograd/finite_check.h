// Opt-in numerical guardrails for the autograd layer.
//
// When enabled (RTGCN_FINITE_CHECKS=1 in the environment, or
// FiniteChecks::set_enabled(true)), every differentiable op scans its
// forward output and Backward scans every node's incoming gradient. The
// first non-finite tensor encountered is recorded with the producing op's
// name, the phase (forward/backward) and the offending flat index, turning
// "loss is nan" into "Exp produced inf at index 42 in forward".
//
// Checks cost one CheckFinite scan per op, so they are off by default;
// the record-keeping itself is a single branch when disabled.
#ifndef RTGCN_AUTOGRAD_FINITE_CHECK_H_
#define RTGCN_AUTOGRAD_FINITE_CHECK_H_

#include <cstdint>
#include <string>

#include "tensor/tensor.h"

namespace rtgcn::ag {

/// \brief Where and what the first non-finite value was.
struct NonFiniteEvent {
  std::string op;     ///< name of the op that produced the tensor
  std::string phase;  ///< "forward" or "backward"
  int64_t index = -1; ///< flat index of the first non-finite entry
  float value = 0;    ///< the offending value (nan or +/-inf)

  std::string ToString() const;
};

/// \brief Global switch + first-offender record for finite checking.
///
/// Tape construction is main-thread-only (see variable.h), so the record
/// is plain global state.
class FiniteChecks {
 public:
  /// Lazily initialized from RTGCN_FINITE_CHECKS (any non-empty value other
  /// than "0"); set_enabled overrides the environment.
  static bool enabled();
  static void set_enabled(bool enabled);

  /// True when a non-finite tensor has been seen since the last Reset.
  static bool tripped();

  /// The first offender since the last Reset (valid only when tripped()).
  static const NonFiniteEvent& first();

  /// Clears the record; typically called at the start of a train step.
  static void Reset();

  /// Scans `t` when checks are enabled; records + warns on the first
  /// non-finite entry seen since Reset. Returns true when `t` is clean
  /// (or checks are disabled).
  static bool Observe(const char* op, const char* phase, const Tensor& t);
};

}  // namespace rtgcn::ag

#endif  // RTGCN_AUTOGRAD_FINITE_CHECK_H_
