file(REMOVE_RECURSE
  "librtgcn_autograd.a"
)
