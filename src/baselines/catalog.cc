#include "baselines/catalog.h"

#include <numeric>
#include <set>

#include "baselines/alstm.h"
#include "baselines/arima.h"
#include "baselines/lstm_models.h"
#include "baselines/rl.h"
#include "baselines/rsr.h"
#include "baselines/rtgat.h"
#include "baselines/rtgcn_predictor.h"
#include "baselines/sfm.h"
#include "baselines/sthan.h"
#include "common/logging.h"

namespace rtgcn::baselines {

std::vector<std::string> Table4Models() {
  return {"ARIMA",     "A-LSTM",     "SFM",        "LSTM",
          "DQN",       "iRDPG",      "Rank_LSTM",  "RSR_I",
          "RSR_E",     "RT-GAT",     "RT-GCN (U)", "RT-GCN (W)",
          "RT-GCN (T)"};
}

std::string ModelCategory(const std::string& name) {
  if (name == "ARIMA" || name == "A-LSTM") return "CLF";
  if (name == "SFM" || name == "LSTM") return "REG";
  if (name == "DQN" || name == "iRDPG") return "RL";
  if (name == "Rank_LSTM" || name == "RSR_I" || name == "RSR_E" ||
      name == "RT-GAT" || name == "STHAN-SR") {
    return "RAN";
  }
  return "Ours";
}

graph::Hypergraph BuildHypergraph(const market::MarketData& data) {
  graph::Hypergraph hg(data.universe.size());
  for (int64_t ind = 0; ind < data.universe.num_industries(); ++ind) {
    hg.AddHyperedge(data.universe.IndustryMembers(ind));
  }
  // One hyperedge per wiki relation type over the stocks it touches.
  const int64_t wiki_begin = data.relations.num_industry_types;
  const int64_t wiki_end = wiki_begin + data.relations.num_wiki_types;
  for (int64_t type = wiki_begin; type < wiki_end; ++type) {
    std::set<int64_t> members;
    for (const auto& link : data.relations.wiki_links) {
      if (link.type == type) {
        members.insert(link.source);
        members.insert(link.target);
      }
    }
    hg.AddHyperedge(std::vector<int64_t>(members.begin(), members.end()));
  }
  return hg;
}

std::unique_ptr<harness::StockPredictor> CreateModel(
    const std::string& name, const graph::RelationTensor& relations,
    const market::MarketData& data, const ModelConfig& config) {
  const int64_t d = config.num_features;
  const int64_t h = config.hidden;
  const int64_t rh = config.rnn_hidden;
  const uint64_t seed = config.seed;

  if (name == "ARIMA") return std::make_unique<ArimaPredictor>(5);
  if (name == "A-LSTM") return std::make_unique<ALstmPredictor>(d, rh, seed);
  if (name == "SFM") {
    return std::make_unique<SfmPredictor>(d, rh, /*num_frequencies=*/4, seed);
  }
  if (name == "LSTM") {
    return std::make_unique<LstmPredictor>(d, rh, /*alpha=*/0.0f, seed);
  }
  if (name == "DQN") {
    return std::make_unique<DqnPredictor>(config.window, d, rh, /*ensemble=*/2,
                                          seed);
  }
  if (name == "iRDPG") {
    return std::make_unique<IrdpgPredictor>(config.window, d, rh, seed);
  }
  if (name == "Rank_LSTM") {
    return std::make_unique<LstmPredictor>(d, rh, config.alpha, seed);
  }
  if (name == "RSR_I") {
    return std::make_unique<RsrPredictor>(relations, RsrVariant::kImplicit, d,
                                          rh, config.alpha, seed);
  }
  if (name == "RSR_E") {
    return std::make_unique<RsrPredictor>(relations, RsrVariant::kExplicit, d,
                                          rh, config.alpha, seed);
  }
  if (name == "RT-GAT") {
    return std::make_unique<RtGatPredictor>(relations, d, h, config.alpha,
                                            seed);
  }
  if (name == "STHAN-SR") {
    // The hypergraph is copied into the predictor's propagation matrix, so
    // a temporary is fine here.
    return std::make_unique<SthanPredictor>(BuildHypergraph(data), d, rh,
                                            config.alpha, seed);
  }

  core::RtGcnConfig rt;
  rt.window = config.window;
  rt.num_features = d;
  rt.relational_filters = h;
  if (name == "RT-GCN (U)") {
    rt.strategy = core::Strategy::kUniform;
  } else if (name == "RT-GCN (W)") {
    rt.strategy = core::Strategy::kWeight;
  } else if (name == "RT-GCN (T)") {
    rt.strategy = core::Strategy::kTimeSensitive;
  } else if (name == "R-Conv") {
    rt.strategy = core::Strategy::kUniform;
    rt.use_temporal = false;
  } else if (name == "T-Conv") {
    rt.use_relational = false;
  } else {
    RTGCN_CHECK(false) << "unknown model name: " << name;
  }
  return std::make_unique<RtGcnPredictor>(relations, rt, config.alpha, seed);
}

// ---------------------------------------------------------------------------
// Experiment runner
// ---------------------------------------------------------------------------

ExperimentResult RunExperiment(const market::MarketData& data,
                               const ExperimentConfig& config) {
  graph::RelationTensor relations =
      config.relations == RelationSubset::kAll ? data.relations.relations
      : config.relations == RelationSubset::kIndustryOnly
          ? data.relations.IndustryOnly()
          : data.relations.WikiOnly();

  market::WindowDataset dataset = data.MakeDataset(
      config.model_config.window, config.model_config.num_features);
  market::DatasetSplit split = SplitByDay(dataset, data.spec.test_boundary());
  RTGCN_CHECK(!split.train_days.empty() && !split.test_days.empty());

  auto model =
      CreateModel(config.model, relations, data, config.model_config);
  model->Fit(dataset, split.train_days, config.train);

  Rng eval_rng(config.model_config.seed * 7919 + 13);
  ExperimentResult result;
  result.model = model->name();
  result.eval = Evaluate(model.get(), dataset, split.test_days, &eval_rng);
  result.fit = model->fit_stats();
  return result;
}

double RepeatedMetrics::MeanMrr() const {
  return mrr.empty() ? 0
                     : std::accumulate(mrr.begin(), mrr.end(), 0.0) /
                           static_cast<double>(mrr.size());
}

const std::vector<double>& RepeatedMetrics::IrrSamples(int64_t k) const {
  switch (k) {
    case 1: return irr1;
    case 5: return irr5;
    default: return irr10;
  }
}

double RepeatedMetrics::MeanIrr(int64_t k) const {
  const auto& v = IrrSamples(k);
  return v.empty() ? 0
                   : std::accumulate(v.begin(), v.end(), 0.0) /
                         static_cast<double>(v.size());
}

RepeatedMetrics RunRepeated(const market::MarketData& data,
                            ExperimentConfig config, int64_t repetitions) {
  RepeatedMetrics metrics;
  // Each repetition trains with different seeds, so each needs its own
  // checkpoint lineage — sharing one directory would make rep r resume
  // from rep r-1's finished run and skip training entirely.
  const std::string checkpoint_base = config.train.checkpoint_dir;
  for (int64_t rep = 0; rep < repetitions; ++rep) {
    config.model_config.seed = 1000 + 31 * rep;
    config.train.seed = 2000 + 17 * rep;
    if (!checkpoint_base.empty()) {
      config.train.checkpoint_dir =
          checkpoint_base + "/rep" + std::to_string(rep);
    }
    ExperimentResult result = RunExperiment(data, config);
    metrics.has_mrr = result.eval.has_mrr;
    metrics.mrr.push_back(result.eval.backtest.mrr);
    metrics.irr1.push_back(result.eval.backtest.irr.at(1));
    metrics.irr5.push_back(result.eval.backtest.irr.at(5));
    metrics.irr10.push_back(result.eval.backtest.irr.at(10));
  }
  return metrics;
}

}  // namespace rtgcn::baselines
