#include "baselines/lstm_models.h"

#include "autograd/ops.h"

namespace rtgcn::baselines {

LstmPredictor::LstmPredictor(int64_t num_features, int64_t hidden, float alpha,
                             uint64_t seed)
    : alpha_(alpha), init_rng_(seed), net_(num_features, hidden, &init_rng_) {}

ag::VarPtr LstmPredictor::Forward(const Tensor& features, Rng* /*rng*/) {
  // features: [T, N, D] — stocks are the batch dimension.
  const int64_t n = features.dim(1);
  ag::VarPtr x = ag::Constant(features);
  ag::VarPtr h = net_.lstm.ForwardLast(x);          // [N, H]
  return ag::Reshape(net_.scorer.Forward(h), {n});  // [N]
}

}  // namespace rtgcn::baselines
