// Command-line flag parsing used by the bench harness binaries.
//
// Two layers:
//  - Flags: the original untyped bag — parse argv into name -> string and
//    pull values out with Get*(name, default). Still supported, since some
//    drivers forward arbitrary flags.
//  - FlagSet: declarative registration. Bind a variable once
//    (`fs.Register("num_threads", &n, "worker count")`), call Parse, and
//    get typed validation, unknown-flag rejection and a generated --help
//    for free. New binaries should use this.
//
// Both accept `--name value` and `--name=value`; bare `--name` sets a bool
// flag to true. Unknown flags are an error so typos in experiment scripts
// fail loudly.
#ifndef RTGCN_COMMON_FLAGS_H_
#define RTGCN_COMMON_FLAGS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace rtgcn {

/// \brief Parsed command-line flags with typed accessors and defaults.
class Flags {
 public:
  /// Parses argv; returns error on a malformed or unpaired flag.
  static Result<Flags> Parse(int argc, char** argv);

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  /// Names of all flags that were provided.
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, std::string> values_;
};

/// \brief Declarative flag registry: bind variables, parse, get --help.
///
/// Defaults are whatever the bound variables hold at Register time; they
/// appear in the generated help text. `--help` (any position) sets
/// help_requested() instead of failing as unknown — callers print Usage()
/// and exit 0.
class FlagSet {
 public:
  /// `description` is a one-line summary of the binary for Usage().
  explicit FlagSet(std::string description = "")
      : description_(std::move(description)) {}

  void Register(const std::string& name, bool* var, const std::string& help);
  void Register(const std::string& name, int* var, const std::string& help);
  void Register(const std::string& name, int64_t* var,
                const std::string& help);
  void Register(const std::string& name, double* var,
                const std::string& help);
  void Register(const std::string& name, float* var, const std::string& help);
  void Register(const std::string& name, std::string* var,
                const std::string& help);

  /// String flag restricted to an explicit value set. Parse rejects any
  /// value not in `choices` (the error lists the accepted values), so a
  /// typo like --kernel=axv2 fails loudly instead of being forwarded to
  /// code that may silently fall back.
  void RegisterChoice(const std::string& name, std::string* var,
                      const std::vector<std::string>& choices,
                      const std::string& help);

  /// Parses argv into the bound variables. Errors on unknown flags,
  /// malformed values and missing values. `--help` is always accepted.
  Status Parse(int argc, char** argv);

  /// True once Parse has seen `--help`.
  bool help_requested() const { return help_requested_; }

  /// Generated help text: one entry per registered flag with its type,
  /// default and help string.
  std::string Usage(const char* argv0 = nullptr) const;

 private:
  struct Flag {
    std::string name;
    std::string help;
    std::string type;          // "bool", "int", "double", "string"
    std::string default_text;  // value at Register time, for Usage()
    bool is_bool = false;
    std::function<bool(const std::string&)> set;  // false = parse failure
  };

  const Flag* Find(const std::string& name) const;
  void Add(Flag flag);

  std::string description_;
  std::vector<Flag> flags_;
  bool help_requested_ = false;
};

}  // namespace rtgcn

#endif  // RTGCN_COMMON_FLAGS_H_
