#include "baselines/rtgat.h"

#include "autograd/ops.h"

namespace rtgcn::baselines {

RtGatPredictor::RtGatPredictor(const graph::RelationTensor& relations,
                               int64_t num_features, int64_t filters,
                               float alpha, uint64_t seed)
    : alpha_(alpha),
      init_rng_(seed),
      net_(relations, num_features, filters, &init_rng_) {}

ag::VarPtr RtGatPredictor::Forward(const Tensor& features, Rng* rng) {
  const int64_t t_len = features.dim(0);
  const int64_t n = features.dim(1);
  const int64_t d = features.dim(2);
  ag::VarPtr x = ag::Constant(features);

  // Shared GAT applied per time-step of the relation-temporal graph.
  std::vector<ag::VarPtr> per_step;
  per_step.reserve(t_len);
  for (int64_t t = 0; t < t_len; ++t) {
    ag::VarPtr xt = ag::Reshape(ag::SliceOp(x, 0, t, t + 1), {n, d});
    ag::VarPtr h = ag::Relu(net_.gat.Forward(xt));
    per_step.push_back(ag::Reshape(h, {1, n, net_.scorer.in_features()}));
  }
  ag::VarPtr seq = ag::ConcatOp(per_step, 0);       // [T, N, F]
  ag::VarPtr conv = net_.temporal.Forward(seq, rng);
  ag::VarPtr pooled = ag::Mean(conv, 0);            // [N, F]
  return ag::Reshape(net_.scorer.Forward(pooled), {n});
}

}  // namespace rtgcn::baselines
