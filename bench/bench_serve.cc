// Closed-loop load generator for the serving subsystem (ISSUE 4 acceptance
// bench): N client threads issue blocking Score() queries against an
// in-process InferenceServer, first with micro-batching disabled
// (--max_batch 1) and then with the configured batch size, against the
// same exported checkpoint. Reports per-config QPS, latency percentiles
// and the executed batch-size histogram from serve::Metrics, plus the
// batched-over-unbatched throughput ratio.
//
//   ./bench_serve [--clients 8] [--requests 400] [--max_batch 32]
//                 [--batch_timeout_us 200] [--cache 0] [--phase 64]
//                 [--stocks 60] [--window 15] [--train_epochs 2]
//
// The cache is OFF by default so the comparison measures batching, not
// memoization: with the cache on, both configs converge to cache-hit
// latency after one pass over the days. Clients walk the test days in a
// shared phase of `--phase` consecutive requests per day, so concurrent
// same-day queries are coalescible into one forward — the access pattern
// of a ranking dashboard where everyone asks about "today".
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "baselines/rtgcn_predictor.h"
#include "common/flags.h"
#include "common/thread_pool.h"
#include "harness/checkpoint.h"
#include "market/market.h"
#include "serve/registry.h"
#include "serve/server.h"

namespace {

using namespace rtgcn;

struct LoadResult {
  double seconds = 0;
  double qps = 0;
  uint64_t errors = 0;
};

// Runs `clients` closed-loop threads, each issuing `requests` blocking
// Score() calls; the shared ticket counter clusters concurrent requests on
// the same day for `phase` consecutive tickets.
LoadResult RunLoad(serve::InferenceServer* server,
                   const std::vector<int64_t>& days, int64_t clients,
                   int64_t requests, int64_t phase,
                   int64_t num_stocks) {
  std::atomic<int64_t> ticket{0};
  std::atomic<uint64_t> errors{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int64_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int64_t i = 0; i < requests; ++i) {
        const int64_t t = ticket.fetch_add(1, std::memory_order_relaxed);
        const int64_t day =
            days[static_cast<size_t>((t / phase) %
                                     static_cast<int64_t>(days.size()))];
        const int64_t stock = (c * requests + i) % num_stocks;
        if (!server->Score(day, stock).ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  LoadResult result;
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.qps = static_cast<double>(clients * requests) / result.seconds;
  result.errors = errors.load();
  return result;
}

void PrintConfig(const char* label, const serve::Metrics& metrics,
                 const LoadResult& load) {
  std::printf("%-22s %8.0f qps   p50 %6.0fus  p95 %6.0fus  p99 %6.0fus   "
              "%" PRIu64 " forwards, mean batch %.1f\n",
              label, load.qps, metrics.latency.PercentileMicros(0.50),
              metrics.latency.PercentileMicros(0.95),
              metrics.latency.PercentileMicros(0.99),
              metrics.forwards.load(), metrics.batch_size.MeanSize());
  std::printf("  batch sizes:");
  for (int64_t s = 1; s <= serve::BatchSizeHistogram::kMaxTracked; ++s) {
    const uint64_t n = metrics.batch_size.CountForSize(s);
    if (n > 0) std::printf("  %lld:%" PRIu64, static_cast<long long>(s), n);
  }
  if (metrics.batch_size.overflow() > 0) {
    std::printf("  >%lld:%" PRIu64,
                static_cast<long long>(serve::BatchSizeHistogram::kMaxTracked),
                metrics.batch_size.overflow());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  int64_t clients = 8;
  int64_t requests = 400;
  int64_t max_batch = 32;
  int64_t batch_timeout_us = 200;
  int64_t phase = 64;
  bool cache = false;
  int64_t train_epochs = 2;
  int num_threads = 0;

  // A small market keeps the bench fast, but the universe must be big
  // enough that the forward pass dominates per-request overhead —
  // otherwise neither config is measuring inference.
  market::MarketSpec spec = market::NasdaqSpec(/*scale=*/0.25);
  spec.num_stocks = 60;
  spec.train_days = 120;
  spec.test_days = 40;
  core::RtGcnConfig config;

  FlagSet fs("Closed-loop serving load generator: batched vs unbatched QPS "
             "against the same exported checkpoint.");
  fs.Register("clients", &clients, "closed-loop client threads");
  fs.Register("requests", &requests, "blocking Score() calls per client");
  fs.Register("max_batch", &max_batch,
              "micro-batch flush size for the batched config");
  fs.Register("batch_timeout_us", &batch_timeout_us,
              "micro-batch window after a batch's first request");
  fs.Register("phase", &phase,
              "consecutive tickets per day (same-day query clustering)");
  fs.Register("cache", &cache, "enable the (version, day) score cache");
  fs.Register("stocks", &spec.num_stocks, "simulated universe size");
  fs.Register("window", &config.window, "look-back window length");
  fs.Register("train_epochs", &train_epochs,
              "training epochs for the exported model");
  fs.Register("num_threads", &num_threads,
              "tensor worker threads (0 = auto)");
  const Status flag_status = fs.Parse(argc, argv);
  if (fs.help_requested()) {
    std::printf("%s", fs.Usage(argv[0]).c_str());
    return 0;
  }
  flag_status.Abort();
  if (num_threads >= 1) SetNumThreads(num_threads);

  const market::MarketData data = market::BuildMarket(spec);
  const market::WindowDataset dataset =
      data.MakeDataset(config.window, config.num_features);
  const std::vector<int64_t> days =
      dataset.Days(spec.test_boundary(), dataset.last_day());

  const std::string dir = "/tmp/rtgcn_bench_serve";
  harness::CheckpointManager manager({dir, 1, 0});
  manager.Init().Abort();
  auto make_predictor = [&data, config] {
    return std::make_unique<baselines::RtGcnPredictor>(
        data.relations.relations, config, /*alpha=*/0.1f, /*seed=*/7);
  };
  {
    auto model = make_predictor();
    harness::TrainOptions train;
    train.epochs = train_epochs;
    model->Fit(dataset, dataset.Days(dataset.first_day(), spec.test_boundary() - 1),
               train);
    model->ExportSnapshot(manager.CheckpointPath(1)).Abort();
  }

  std::printf("bench_serve: %lld clients x %lld reqs, %lld stocks, "
              "%zu test days, cache %s\n",
              static_cast<long long>(clients),
              static_cast<long long>(requests),
              static_cast<long long>(dataset.num_stocks()), days.size(),
              cache ? "on" : "off");

  double qps_unbatched = 0;
  double qps_batched = 0;
  for (const bool batched : {false, true}) {
    serve::Metrics metrics;
    serve::ModelRegistry registry(
        {dir, /*reload_interval_ms=*/0},
        [make_predictor] { return serve::WrapPredictor(make_predictor()); },
        &metrics);
    registry.Start().Abort();
    serve::InferenceServer::Options opts;
    opts.max_batch = batched ? max_batch : 1;
    opts.batch_timeout_us = batched ? batch_timeout_us : 0;
    opts.enable_cache = cache;
    serve::InferenceServer server(&dataset, &registry, opts, &metrics);
    server.Start().Abort();

    // Warm-up so neither config pays first-touch costs inside the timed run.
    server.Rank(days.front()).status().Abort();

    const LoadResult load =
        RunLoad(&server, days, clients, requests, phase, dataset.num_stocks());
    server.Stop();
    registry.Stop();

    PrintConfig(batched ? "batched" : "max_batch=1", metrics, load);
    if (load.errors > 0) {
      std::printf("  !! %" PRIu64 " failed queries\n", load.errors);
    }
    (batched ? qps_batched : qps_unbatched) = load.qps;
  }

  std::printf("speedup (batched / max_batch=1): %.2fx\n",
              qps_batched / qps_unbatched);
  return 0;
}
