// DynamicGraph: a RelationTensor + CsrGraph pair that absorbs streaming
// edge deltas and rebuilds the CSR incrementally (DESIGN.md §14).
//
// CsrGraph is immutable by design (in-flight propagations share it via
// shared_ptr), so "incremental" means: assemble a *new* CsrGraph, but only
// regenerate the row segments whose structure changed — every other row's
// col/type segment is block-copied from the previous snapshot at its new
// offset, reverse-entry indices of clean→clean entries are rebased with an
// offset delta instead of a binary search, and only the O(nnz)
// coefficient sweep (identical to Build's) runs in full. The result must
// be BIT-IDENTICAL, array for array, to CsrGraph::Build on the mutated
// tensor — stream_test enforces exact equality after every delta batch.
//
// Rebuild cost is O(|dirty rows| · deg + copy) instead of Build's
// enumerate+sort+search over the whole tensor; the
// stream.graph.rows_rebuilt / stream.graph.rows_total counters expose the
// realized rebuild fraction.
#ifndef RTGCN_STREAM_DYNAMIC_GRAPH_H_
#define RTGCN_STREAM_DYNAMIC_GRAPH_H_

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "common/status.h"
#include "graph/relation_tensor.h"
#include "graph/sparse.h"
#include "stream/events.h"

namespace rtgcn::stream {

/// \brief Mutable relation state with an incrementally rebuilt CSR view.
class DynamicGraph {
 public:
  DynamicGraph(graph::RelationTensor initial, graph::CsrGraph::Norm norm,
               bool add_self_loops);

  /// Applies one day's edge deltas (duplicate adds and absent removes are
  /// no-ops that dirty nothing). The CSR is rebuilt lazily on next Csr().
  Status Apply(const std::vector<RelationEvent>& events);

  /// Current CSR snapshot; rebuilds incrementally when deltas are pending.
  /// The returned pointer is immutable — callers may keep it across later
  /// Apply calls (RCU-style, like serve's model snapshots).
  const graph::CsrPtr& Csr();

  const graph::RelationTensor& relations() const { return relations_; }
  int64_t num_slots() const { return relations_.num_stocks(); }

  /// Relation tensor induced on a slot subset: edges with both endpoints
  /// in `slots`, endpoints remapped to positions in `slots` (the relation
  /// input for a model trained on that sub-universe). Type space is
  /// preserved.
  graph::RelationTensor InducedSubgraph(
      const std::vector<int64_t>& slots) const;

  /// Rows regenerated / rows total across all incremental rebuilds (also
  /// published as stream.graph.rows_rebuilt / stream.graph.rows_total).
  int64_t rows_rebuilt() const { return rows_rebuilt_; }
  int64_t rows_total() const { return rows_total_; }
  int64_t incremental_rebuilds() const { return incremental_rebuilds_; }

 private:
  void IncrementalRebuild();

  graph::RelationTensor relations_;
  graph::CsrGraph::Norm norm_;
  bool self_loops_;

  /// Sorted neighbor index (cols only) per row — RelationTensor cannot
  /// enumerate one node's neighbors without a full scan, so the rebuilder
  /// maintains its own adjacency mirror under Apply.
  std::vector<std::vector<int32_t>> nbrs_;

  graph::CsrPtr csr_;
  std::set<int64_t> dirty_rows_;  ///< rows whose structure/types changed

  int64_t rows_rebuilt_ = 0;
  int64_t rows_total_ = 0;
  int64_t incremental_rebuilds_ = 0;
};

}  // namespace rtgcn::stream

#endif  // RTGCN_STREAM_DYNAMIC_GRAPH_H_
