#include "tensor/init.h"

#include <cmath>

namespace rtgcn {

Tensor RandomUniform(Shape shape, float lo, float hi, Rng* rng) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

Tensor RandomGaussian(Shape shape, float mean, float stddev, Rng* rng) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng->Gaussian(mean, stddev));
  }
  return t;
}

Tensor XavierUniform(Shape shape, int64_t fan_in, int64_t fan_out, Rng* rng) {
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return RandomUniform(std::move(shape), -a, a, rng);
}

Tensor KaimingUniform(Shape shape, int64_t fan_in, Rng* rng) {
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in));
  return RandomUniform(std::move(shape), -a, a, rng);
}

}  // namespace rtgcn
