// Shared helpers for the table/figure reproduction binaries.
#ifndef RTGCN_BENCH_BENCH_COMMON_H_
#define RTGCN_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include "baselines/catalog.h"
#include "common/flags.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "harness/table.h"
#include "market/market.h"

namespace rtgcn::bench {

/// Parses argv and applies the global execution flags every bench binary
/// shares (--num_threads N overrides the RTGCN_NUM_THREADS env var).
inline Flags ParseBenchFlags(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv).ValueOrDie();
  InitNumThreadsFromFlags(flags);
  return flags;
}

/// Markets for a bench run: parses --markets "NASDAQ,NYSE,CSI" (default all)
/// and applies --scale (default 1.0).
inline std::vector<market::MarketSpec> MarketsFromFlags(const Flags& flags) {
  const double scale = flags.GetDouble("scale", 1.0);
  std::vector<market::MarketSpec> specs;
  for (const std::string& name :
       Split(flags.GetString("markets", "NASDAQ,NYSE,CSI"), ',')) {
    if (name == "NASDAQ") specs.push_back(market::NasdaqSpec(scale));
    if (name == "NYSE") specs.push_back(market::NyseSpec(scale));
    if (name == "CSI") specs.push_back(market::CsiSpec(scale));
  }
  return specs;
}

/// Applies the shared crash-safe checkpointing flags to a TrainOptions:
/// --checkpoint_dir DIR (enables periodic save + resume-from-latest),
/// --checkpoint_every N, --checkpoint_keep N, --resume 0/1.
inline void ApplyCheckpointFlags(const Flags& flags,
                                 harness::TrainOptions* train) {
  train->checkpoint_dir = flags.GetString("checkpoint_dir", "");
  train->checkpoint_every =
      flags.GetInt("checkpoint_every", train->checkpoint_every);
  train->checkpoint_keep =
      flags.GetInt("checkpoint_keep", train->checkpoint_keep);
  train->resume = flags.GetBool("resume", train->resume);
}

inline std::string Fmt3(double v) { return FormatFixed(v, 3); }
inline std::string Fmt2(double v) { return FormatFixed(v, 2); }

/// Formats a p-value like the paper ("3.05e-4").
inline std::string FmtP(double p) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2e", p);
  return buf;
}

}  // namespace rtgcn::bench

#endif  // RTGCN_BENCH_BENCH_COMMON_H_
