// Graph attention layer (Velickovic et al.), used by the RT-GAT baseline.
#ifndef RTGCN_GRAPH_GAT_H_
#define RTGCN_GRAPH_GAT_H_

#include "nn/module.h"
#include "tensor/tensor.h"

namespace rtgcn::graph {

/// \brief Single-head GAT layer over a fixed binary edge mask.
///
/// e_ij = LeakyReLU(a_src · Wh_i + a_dst · Wh_j), softmax over the masked
/// neighborhood (self loops included), h'_i = Σ_j α_ij W h_j.
class GatLayer : public nn::Module {
 public:
  /// `edge_mask` is a binary [N, N] adjacency; self loops are added here.
  GatLayer(Tensor edge_mask, int64_t in_features, int64_t out_features,
           Rng* rng, float leaky_slope = 0.2f);

  /// x: [N, in] -> [N, out].
  ag::VarPtr Forward(const ag::VarPtr& x) const;

  /// Attention matrix from the most recent Forward call ([N, N], detached).
  const Tensor& last_attention() const { return last_attention_; }

 private:
  Tensor mask_;  // binary with self loops
  int64_t in_features_;
  int64_t out_features_;
  float leaky_slope_;
  ag::VarPtr weight_;  // [in, out]
  ag::VarPtr a_src_;   // [out, 1]
  ag::VarPtr a_dst_;   // [out, 1]
  mutable Tensor last_attention_;
};

}  // namespace rtgcn::graph

#endif  // RTGCN_GRAPH_GAT_H_
