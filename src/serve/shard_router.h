// Sharded scatter-gather serving over K in-process worker shards
// (DESIGN.md §15).
//
// The stock universe is partitioned across shards by consistent hashing
// (a ring of virtual nodes, so ownership barely moves when the shard
// count changes). Each shard runs its own micro-batcher thread and a
// per-(version, day) cache of its *owned slice* of the day's scores.
//
// RT-GCN scores are relational — a stock's score depends on the whole
// universe through graph propagation — so a shard cannot score only its
// own stocks: on a cache miss it runs the full forward pass and keeps
// just the owned slice (scores + global ranks, computed before slicing).
// Sharding therefore parallelizes the serving plane (batching, caching,
// admission, reply assembly), not the forward itself; the payoff is that
// after each shard has filled its (version, day) slice, the hot path
// reassembles replies from K caches without any forward at all.
//
// Bit-identity: every reply path ranks by score descending with ties
// broken by stock id ascending — exactly the single-process
// InferenceServer's order — and the merge scatters each shard's owned
// scores back into one [N] vector, so a sharded RANK is byte-identical
// to the oracle at any shard count.
//
// Hot-reload atomicity: the router pins ONE registry snapshot per request
// and hands that pointer to every shard task it scatters. Shards never
// consult the registry, so all fragments of one reply are scored by one
// version no matter how a reload races the fan-out.
#ifndef RTGCN_SERVE_SHARD_ROUTER_H_
#define RTGCN_SERVE_SHARD_ROUTER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "market/dataset.h"
#include "serve/admission.h"
#include "serve/metrics.h"
#include "serve/protocol.h"
#include "serve/registry.h"

namespace rtgcn::serve {

/// \brief Backend that scatter-gathers across K in-process shards.
class ShardRouter : public Backend {
 public:
  struct Options {
    int64_t num_shards = 2;
    /// Virtual nodes per shard on the consistent-hash ring.
    int64_t virtual_nodes = 64;

    // Per-shard micro-batching (same semantics as InferenceServer).
    int64_t max_batch = 32;
    int64_t batch_timeout_us = 200;
    bool enable_cache = true;      ///< per-shard (version, day) slice cache
    int64_t cache_capacity = 256;  ///< per-shard (version, day) slices

    // Router-level overload safety.
    int64_t max_queue = 1024;
    AdmissionPolicy admission = AdmissionPolicy::kRejectFast;
    int64_t admission_timeout_ms = 50;
    int64_t degraded_failure_threshold = 3;
  };

  /// Full forward pass: all-stock scores for `day` under `snapshot`.
  /// Must be deterministic in (snapshot, day) — bit-identity across
  /// shards depends on it.
  using ScoreFn = std::function<Result<std::vector<float>>(
      const ModelSnapshot& snapshot, int64_t day)>;

  /// ScoreFn over a WindowDataset — the batch-serving forward, identical
  /// to InferenceServer's (same day validation, same Score call).
  static ScoreFn DatasetScoreFn(const market::WindowDataset* data);

  /// `registry` and `metrics` (nullable) must outlive the router;
  /// `num_stocks` fixes the ownership partition.
  ShardRouter(ScoreFn score_fn, int64_t num_stocks, ModelRegistry* registry,
              Options options, Metrics* metrics);
  ~ShardRouter() override;

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Starts the shard worker threads. Idempotent.
  Status Start();

  /// Drains: queued shard work completes, later requests get DRAINING.
  void Stop();

  // Backend interface.
  Result<RankReply> Rank(int64_t day, RequestOptions request) override;
  Result<ScoreReply> Score(int64_t day, int64_t stock,
                           RequestOptions request) override;
  bool TryRankCached(int64_t day, RankReply* out) override;
  bool TryScoreCached(int64_t day, int64_t stock, ScoreReply* out) override;
  HealthState Health() override;
  std::string HealthLine() override;
  int64_t CurrentVersion() const override;
  int64_t num_shards() const override { return options_.num_shards; }

  /// Owning shard of `stock` on the consistent-hash ring (for tests).
  int64_t OwnerShard(int64_t stock) const;

  int64_t num_stocks() const { return num_stocks_; }

 private:
  /// One shard's slice of a (version, day) forward: its owned stocks'
  /// scores and their *global* ranks, both aligned with Shard::owned.
  struct Slice {
    int64_t version = -1;
    std::vector<float> scores;
    std::vector<int64_t> ranks;
  };
  using SlicePtr = std::shared_ptr<const Slice>;

  struct Pending {
    int64_t day = 0;
    std::shared_ptr<const ModelSnapshot> snapshot;  ///< pinned by the router
    std::chrono::steady_clock::time_point enqueue;
    std::chrono::steady_clock::time_point deadline;  ///< max() when none
    std::promise<Result<SlicePtr>> promise;
  };

  struct Shard {
    std::vector<int64_t> owned;  ///< owned stock ids, ascending

    std::mutex mu;
    std::condition_variable cv;
    std::deque<Pending> queue;
    bool draining = false;
    std::thread worker;

    // (version, day) -> owned slice; FIFO-evicted. `mu` also guards this.
    std::unordered_map<uint64_t, SlicePtr> cache;
    std::deque<uint64_t> fifo;
  };

  void WorkerLoop(Shard* shard);
  void ExecuteShardBatch(Shard* shard, std::vector<Pending> batch);
  /// Builds (or fetches) the shard's slice for (snapshot, day).
  Result<SlicePtr> SliceFor(Shard* shard,
                            const std::shared_ptr<const ModelSnapshot>& snap,
                            int64_t day);
  /// Scatters `day` to every shard under one pinned snapshot and merges
  /// the slices into a full score vector.
  Result<RankReply> ScatterGather(
      int64_t day, const std::shared_ptr<const ModelSnapshot>& snapshot,
      std::chrono::steady_clock::time_point deadline, bool degraded);
  std::future<Result<SlicePtr>> SubmitToShard(
      Shard* shard, int64_t day,
      const std::shared_ptr<const ModelSnapshot>& snapshot,
      std::chrono::steady_clock::time_point deadline);
  /// Admission + degraded/stale bookkeeping shared by Rank and Score;
  /// returns the pinned snapshot (null when degraded with no model).
  HealthState HealthLocked(bool draining);
  void RememberRank(int64_t day, RankReply reply);
  bool LastRankFor(int64_t day, RankReply* out);
  int64_t QueueDepth();

  ScoreFn score_fn_;
  int64_t num_stocks_;
  ModelRegistry* registry_;
  Options options_;
  Metrics* metrics_;

  AdmissionController admission_;

  std::vector<int64_t> owner_;        ///< stock -> shard, from the hash ring
  std::vector<int64_t> owned_index_;  ///< stock -> index in its shard's owned
  std::vector<std::unique_ptr<Shard>> shards_;

  std::mutex state_mu_;
  bool running_ = false;
  bool draining_ = false;

  // day -> last merged reply (any version): the DEGRADED fallback when no
  // snapshot is published. FIFO-bounded like the shard caches.
  std::mutex stale_mu_;
  std::unordered_map<int64_t, RankReply> last_by_day_;
  std::deque<int64_t> stale_fifo_;

  // Degraded-seconds accounting (same scheme as InferenceServer).
  std::mutex health_mu_;
  uint64_t last_health_us_ = 0;
  bool was_degraded_ = false;
  double degraded_secs_ = 0;
};

}  // namespace rtgcn::serve

#endif  // RTGCN_SERVE_SHARD_ROUTER_H_
