// Thread-pool unit tests: worker lifecycle, exception propagation out of
// ParallelFor, grain-size edge cases, and the deterministic chunked fold.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace rtgcn {
namespace {

// Pins the thread count for one test and restores the default afterwards so
// the setting never leaks into other tests in the binary.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(int n) { SetNumThreads(n); }
  ~ScopedNumThreads() { SetNumThreads(0); }
};

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ScopedNumThreads threads(4);
  constexpr int64_t kN = 10007;  // prime: last chunk is ragged
  std::vector<int> hits(kN, 0);
  ParallelFor(0, kN, 64, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), int64_t{0}), kN);
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, EmptyRangeNeverInvokesBody) {
  ScopedNumThreads threads(4);
  bool called = false;
  ParallelFor(5, 5, 8, [&](int64_t, int64_t) { called = true; });
  ParallelFor(9, 3, 8, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, RangeSmallerThanGrainRunsInlineOnce) {
  ScopedNumThreads threads(8);
  int calls = 0;
  std::thread::id body_thread;
  ParallelFor(2, 7, 100, [&](int64_t lo, int64_t hi) {
    ++calls;
    body_thread = std::this_thread::get_id();
    EXPECT_EQ(lo, 2);
    EXPECT_EQ(hi, 7);
  });
  EXPECT_EQ(calls, 1);
  // A single chunk never leaves the calling thread.
  EXPECT_EQ(body_thread, std::this_thread::get_id());
}

TEST(ThreadPoolTest, GrainLargerThanRangeAndNonPositiveGrain) {
  ScopedNumThreads threads(4);
  EXPECT_EQ(NumChunks(0, 10, 1000), 1);
  EXPECT_EQ(NumChunks(0, 0, 16), 0);
  // grain <= 0 clamps to 1: one chunk per element, all indices covered.
  std::vector<int> hits(17, 0);
  ParallelFor(0, 17, 0, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (int i = 0; i < 17; ++i) EXPECT_EQ(hits[i], 1);
  EXPECT_EQ(NumChunks(0, 17, -3), 17);
}

TEST(ThreadPoolTest, ChunkBoundariesIndependentOfThreadCount) {
  // The set of (lo, hi) pairs the body sees must be a function of
  // (range, grain) only — this is the determinism contract.
  auto boundaries = [](int threads) {
    ScopedNumThreads scoped(threads);
    std::mutex mu;
    std::vector<std::pair<int64_t, int64_t>> seen;
    ParallelFor(3, 1000, 37, [&](int64_t lo, int64_t hi) {
      std::lock_guard<std::mutex> lock(mu);
      seen.emplace_back(lo, hi);
    });
    std::sort(seen.begin(), seen.end());
    return seen;
  };
  const auto at2 = boundaries(2);
  const auto at4 = boundaries(4);
  const auto at8 = boundaries(8);
  EXPECT_EQ(at2, at4);
  EXPECT_EQ(at2, at8);
  // Serial execution runs the body once over the whole range; its coverage
  // must equal the union of the parallel chunks.
  const auto at1 = boundaries(1);
  ASSERT_EQ(at1.size(), 1u);
  EXPECT_EQ(at1[0].first, 3);
  EXPECT_EQ(at1[0].second, 1000);
  EXPECT_EQ(at2.front().first, 3);
  EXPECT_EQ(at2.back().second, 1000);
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolStaysUsable) {
  ScopedNumThreads threads(4);
  auto throwing = [&] {
    ParallelFor(0, 256, 1, [&](int64_t lo, int64_t) {
      if (lo == 97) throw std::runtime_error("chunk 97 failed");
    });
  };
  EXPECT_THROW(throwing(), std::runtime_error);
  try {
    throwing();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 97 failed");
  }
  // The pool must have drained the failed job completely and accept new work.
  std::atomic<int64_t> sum{0};
  ParallelFor(0, 1000, 8, [&](int64_t lo, int64_t hi) {
    int64_t local = 0;
    for (int64_t i = lo; i < hi; ++i) local += i;
    sum.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 1000 * 999 / 2);
}

TEST(ThreadPoolTest, StartupShutdownAndRespawn) {
  ScopedNumThreads threads(4);
  std::atomic<int> touched{0};
  ParallelFor(0, 64, 1, [&](int64_t, int64_t) {
    touched.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(touched.load(), 64);
  // 4 threads = caller + 3 workers.
  EXPECT_EQ(internal::ThreadPool::Global().num_workers(), 3);

  internal::ThreadPool::Global().Shutdown();
  EXPECT_EQ(internal::ThreadPool::Global().num_workers(), 0);

  // The pool restarts lazily on the next parallel call.
  touched = 0;
  ParallelFor(0, 64, 1, [&](int64_t, int64_t) {
    touched.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(touched.load(), 64);
  EXPECT_EQ(internal::ThreadPool::Global().num_workers(), 3);
}

TEST(ThreadPoolTest, ResizesWhenNumThreadsChanges) {
  ScopedNumThreads threads(2);
  ParallelFor(0, 16, 1, [](int64_t, int64_t) {});
  EXPECT_EQ(internal::ThreadPool::Global().num_workers(), 1);
  SetNumThreads(5);
  ParallelFor(0, 16, 1, [](int64_t, int64_t) {});
  EXPECT_EQ(internal::ThreadPool::Global().num_workers(), 4);
  SetNumThreads(1);
  // Serial path: the pool is bypassed entirely, workers linger untouched.
  std::thread::id body_thread;
  ParallelFor(0, 16, 1,
              [&](int64_t, int64_t) { body_thread = std::this_thread::get_id(); });
  EXPECT_EQ(body_thread, std::this_thread::get_id());
}

TEST(ThreadPoolTest, NestedParallelForInlinesWithoutDeadlock) {
  ScopedNumThreads threads(4);
  constexpr int64_t kOuter = 32;
  constexpr int64_t kInner = 100;
  std::vector<int64_t> sums(kOuter, 0);
  ParallelFor(0, kOuter, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t o = lo; o < hi; ++o) {
      // Inside a worker this must run inline on the same thread.
      ParallelFor(0, kInner, 8, [&](int64_t ilo, int64_t ihi) {
        for (int64_t i = ilo; i < ihi; ++i) sums[o] += i;
      });
    }
  });
  for (int64_t o = 0; o < kOuter; ++o) {
    EXPECT_EQ(sums[o], kInner * (kInner - 1) / 2);
  }
}

TEST(ThreadPoolTest, BackToBackJobsStress) {
  // Many consecutive short jobs maximize the window in which a late-waking
  // worker still holds the previous job's (stack-allocated) function
  // pointer; regression for a use-after-free between jobs.
  ScopedNumThreads threads(8);
  for (int round = 0; round < 3000; ++round) {
    std::atomic<int64_t> sum{0};
    ParallelFor(0, 64, 8, [&](int64_t lo, int64_t hi) {
      int64_t local = 0;
      for (int64_t i = lo; i < hi; ++i) local += i;
      sum.fetch_add(local, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 64 * 63 / 2) << "round " << round;
  }
}

TEST(ThreadPoolTest, ParallelReduceMatchesSerialFoldBitwise) {
  // Per-chunk float sums folded in chunk order: the fold tree is fixed by
  // (range, grain), so every thread count produces the same bits.
  std::vector<float> data(5003);
  uint64_t state = 0x9e3779b97f4a7c15ull;
  for (auto& v : data) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    v = static_cast<float>(state >> 40) / 16777216.0f - 0.5f;
  }
  auto reduce = [&](int threads) {
    ScopedNumThreads scoped(threads);
    return ParallelReduce<float>(
        0, static_cast<int64_t>(data.size()), 128, 0.0f,
        [&](int64_t lo, int64_t hi) {
          float s = 0.0f;
          for (int64_t i = lo; i < hi; ++i) s += data[i];
          return s;
        },
        [](float a, float b) { return a + b; });
  };
  const float at1 = reduce(1);
  for (int t : {2, 4, 8}) {
    const float att = reduce(t);
    EXPECT_EQ(at1, att) << "threads=" << t;  // bitwise, not approximate
  }
}

TEST(ThreadPoolTest, ParallelReduceEmptyRangeReturnsIdentity) {
  ScopedNumThreads threads(4);
  const float r = ParallelReduce<float>(
      10, 10, 4, -7.5f, [](int64_t, int64_t) { return 0.0f; },
      [](float a, float b) { return a + b; });
  EXPECT_EQ(r, -7.5f);
}

TEST(ThreadPoolTest, SetNumThreadsPinsAndResets) {
  SetNumThreads(3);
  EXPECT_EQ(NumThreads(), 3);
  SetNumThreads(0);
  EXPECT_GE(NumThreads(), 1);
}

}  // namespace
}  // namespace rtgcn
