#include "graph/gcn.h"

#include "autograd/ops.h"
#include "tensor/init.h"

namespace rtgcn::graph {

GcnLayer::GcnLayer(Tensor normalized_adjacency, int64_t in_features,
                   int64_t out_features, Rng* rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  RTGCN_CHECK_EQ(normalized_adjacency.ndim(), 2);
  RTGCN_CHECK_EQ(normalized_adjacency.dim(0), normalized_adjacency.dim(1));
  adjacency_ = ag::Constant(std::move(normalized_adjacency));
  weight_ = RegisterParameter(
      "weight",
      XavierUniform({in_features, out_features}, in_features, out_features,
                    rng));
  if (bias) bias_ = RegisterParameter("bias", Tensor::Zeros({out_features}));
}

ag::VarPtr GcnLayer::Forward(const ag::VarPtr& x) const {
  RTGCN_CHECK_EQ(x->value.ndim(), 2);
  RTGCN_CHECK_EQ(x->value.dim(1), in_features_);
  ag::VarPtr out = ag::MatMul(adjacency_, ag::MatMul(x, weight_));
  if (bias_) out = ag::Add(out, bias_);
  return out;
}

}  // namespace rtgcn::graph
