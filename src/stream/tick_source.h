// TickSource: turns the stateful MarketSimulator into an intraday event
// stream (DESIGN.md §14).
//
// One NextDay() call advances the simulator one trading day and expands it
// into a DayUpdate: universe churn (IPO / delist) and relation events
// (edge appear / per-type half-life decay) at the open, seeded intraday
// tick batches bridging the previous close to the new close, then the
// official close. Scenario knobs cover the stress cases the rolling
// pipeline must survive: a flash-crash window (MarketSimulator::ForceRegime
// — regime forcing never desynchronizes the other simulator streams) and
// per-day trading halts (no intraday ticks; the closing auction still
// prints).
//
// Determinism: all stream-layer draws (ticks, halts, churn, edge dynamics)
// come from Rng streams forked from `StreamConfig::seed`, independent of
// the simulator's own streams — two TickSources with equal configs emit
// identical event sequences.
#ifndef RTGCN_STREAM_TICK_SOURCE_H_
#define RTGCN_STREAM_TICK_SOURCE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "market/relation_generator.h"
#include "market/simulator.h"
#include "market/universe.h"
#include "stream/events.h"

namespace rtgcn::stream {

/// \brief Stream-layer configuration (the simulator config rides inside).
struct StreamConfig {
  market::SimulatorConfig sim;  ///< daily dynamics (seeded separately)

  int64_t intraday_steps = 4;  ///< tick batches per day (>= 1; last = close)
  /// Probability a given active stock prints in a non-final batch.
  double tick_density = 0.6;
  /// Log-scale noise of intraday prints around the open→close bridge.
  double intraday_vol = 0.004;

  // Stress scenarios.
  int64_t flash_crash_day = -1;  ///< ForceRegime(kCrash) at this day (-1 off)
  int64_t flash_crash_duration = 3;
  double halt_probability = 0.0;  ///< per-stock per-day halt probability

  // Universe churn. Slots beyond `initial_active` start dormant (pre-IPO).
  int64_t initial_active = 0;  ///< 0 = every slot active from day 0
  double ipo_probability = 0.0;     ///< per-day P(one dormant slot lists)
  double delist_probability = 0.0;  ///< per-day P(one active slot delists)
  int64_t min_active = 4;           ///< delisting never goes below this
  int64_t churn_start_day = 0;      ///< no churn before this day

  // Relation dynamics.
  double edge_appear_per_day = 0.0;  ///< expected new wiki-type edges / day
  /// Half-life in days for edges of each relation type (indexed by type);
  /// <= 0 or missing = the type never decays. Typically only wiki types
  /// decay — industry membership is structural.
  std::vector<double> type_half_life;

  uint64_t seed = 17;  ///< stream-layer seed (independent of sim.seed)
};

/// \brief Seeded intraday event stream over a simulated market.
///
/// `universe` and `relations` must outlive the source. `relations` is the
/// day-0 relation state; relation events are emitted as deltas against it
/// (TickSource tracks the evolving edge set internally for decay draws).
class TickSource {
 public:
  TickSource(const market::StockUniverse& universe,
             const market::RelationData& relations, StreamConfig config);

  /// Produces the next trading day. The first call yields day 1 (day 0 is
  /// the simulator's initial state: closes available via `day0_close()`).
  DayUpdate NextDay();

  int64_t day() const { return sim_.day(); }
  int64_t num_slots() const { return num_slots_; }
  /// Closing prices of simulator day 0 (the stream's seed row).
  const std::vector<float>& day0_close() const { return day0_close_; }

  const std::vector<bool>& active() const { return active_; }
  int64_t num_active() const { return num_active_; }
  /// Bumped once per day that carries at least one universe event.
  int64_t universe_version() const { return universe_version_; }

  const StreamConfig& config() const { return config_; }
  const market::MarketSimulator& simulator() const { return sim_; }

 private:
  void EmitChurn(DayUpdate* update);
  void EmitRelationDynamics(DayUpdate* update);
  void EmitTicks(DayUpdate* update, const std::vector<float>& prev_close);

  const market::StockUniverse* universe_;
  StreamConfig config_;
  market::MarketSimulator sim_;

  int64_t num_slots_ = 0;
  std::vector<float> day0_close_;

  std::vector<bool> active_;
  int64_t num_active_ = 0;
  int64_t universe_version_ = 0;

  /// Evolving edge set for decay draws: every live (i, j, type) fact whose
  /// type has a finite half-life.
  struct DynEdge {
    int64_t i, j;
    int32_t type;
  };
  std::vector<DynEdge> decayable_;

  Rng tick_rng_, scenario_rng_, relation_rng_;
};

}  // namespace rtgcn::stream

#endif  // RTGCN_STREAM_TICK_SOURCE_H_
