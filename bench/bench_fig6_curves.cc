// Reproduces Figure 6: cumulative IRR-1/5/10 of the three RT-GCN strategies
// across the test period, against the market index (DJI / S&P 500 / CSI 300
// in the paper; here the simulated cap-weighted index). Prints curve
// checkpoints and writes full daily curves to fig6_<market>.csv.
//
// Flags: --markets NASDAQ,NYSE,CSI  --epochs 8  --scale 1.0
#include <cstdio>

#include "bench_common.h"
#include "common/csv.h"
#include "harness/evaluator.h"
#include "rank/backtest.h"

namespace rtgcn::bench {
namespace {

int Run(int argc, char** argv) {
  auto flags = ParseBenchFlags(argc, argv);
  const int64_t epochs = flags.GetInt("epochs", 8);

  for (const market::MarketSpec& spec : MarketsFromFlags(flags)) {
    std::printf("=== Figure 6 — return curves, %s (simulated) ===\n",
                spec.name.c_str());
    market::MarketData data = market::BuildMarket(spec);
    market::WindowDataset dataset = data.MakeDataset(15, 4);
    market::DatasetSplit split =
        SplitByDay(dataset, data.spec.test_boundary());

    CsvTable csv;
    csv.header = {"day"};
    std::vector<std::vector<double>> curves;
    std::vector<std::string> labels;

    for (const std::string& model :
         {"RT-GCN (U)", "RT-GCN (W)", "RT-GCN (T)"}) {
      baselines::ExperimentConfig config;
      config.model = model;
      config.train.epochs = epochs;
      baselines::ExperimentResult r = baselines::RunExperiment(data, config);
      for (int64_t k : {1, 5, 10}) {
        labels.push_back(model + " IRR-" + std::to_string(k));
        curves.push_back(r.eval.backtest.irr_curve.at(k));
      }
      std::printf("  done: %s\n", model.c_str());
      std::fflush(stdout);
    }
    // Market index over the same days.
    const int64_t begin = split.test_days.front();
    const int64_t end = split.test_days.back() + 1;
    labels.push_back(spec.name == "CSI" ? "CSI 300 (sim index)"
                                        : "market index (sim)");
    curves.push_back(rank::IndexReturnCurve(data.sim.index, begin + 1, end + 1));

    // Checkpoint table every ~20 days.
    harness::TablePrinter table([&] {
      std::vector<std::string> header = {"series"};
      for (size_t d = 0; d < curves[0].size(); d += 20) {
        header.push_back("d" + std::to_string(d));
      }
      header.push_back("final");
      return header;
    }());
    for (size_t c = 0; c < curves.size(); ++c) {
      std::vector<std::string> row = {labels[c]};
      for (size_t d = 0; d < curves[c].size(); d += 20) {
        row.push_back(Fmt2(curves[c][d]));
      }
      row.push_back(Fmt2(curves[c].back()));
      table.AddRow(row);
    }
    table.Print();

    // Full curves to CSV.
    for (const auto& label : labels) csv.header.push_back(label);
    const size_t days = curves[0].size();
    for (size_t d = 0; d < days; ++d) {
      std::vector<std::string> row = {std::to_string(d)};
      for (const auto& curve : curves) {
        row.push_back(d < curve.size() ? FormatFixed(curve[d], 4) : "");
      }
      csv.rows.push_back(std::move(row));
    }
    const std::string path = "fig6_" + spec.name + ".csv";
    WriteCsv(path, csv).Abort();
    std::printf("full daily curves written to %s\n", path.c_str());
    std::printf(
        "\nExpected shape (paper Fig. 6): IRR-1 is the most volatile "
        "series, IRR-5/IRR-10 rise smoothly, and all model curves finish "
        "above the market index.\n\n");
  }
  return 0;
}

}  // namespace
}  // namespace rtgcn::bench

int main(int argc, char** argv) { return rtgcn::bench::Run(argc, argv); }
