#include "harness/gradient_predictor.h"

#include <cmath>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/loss.h"
#include "harness/checkpoint.h"
#include "nn/serialize.h"
#include "obs/clock.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace rtgcn::harness {

namespace {

// Registry pointers are stable for process life, so resolve them once.
struct TrainMetrics {
  obs::Counter* steps;
  obs::Counter* epochs;
  obs::Histogram* step_us;
};

const TrainMetrics& GlobalTrainMetrics() {
  static const TrainMetrics m{
      obs::Registry::Global().GetCounter("train.steps"),
      obs::Registry::Global().GetCounter("train.epochs"),
      obs::Registry::Global().GetHistogram(
          "train.step_us", obs::BucketSpec::Exponential2(40))};
  return m;
}

// In-memory fallback rollback target for runs without a checkpoint_dir:
// a deep copy of everything Fit needs to replay an epoch.
struct EpochSnapshot {
  std::vector<Tensor> params;
  ag::OptimizerState optimizer;
  Rng::State rng;
  std::vector<int64_t> day_order;
  int64_t epoch = 0;
  bool valid = false;
};

EpochSnapshot TakeSnapshot(nn::Module* mod, const ag::Optimizer& optimizer,
                           const Rng& rng, const std::vector<int64_t>& days,
                           int64_t epoch) {
  EpochSnapshot snap;
  for (const auto& p : mod->Parameters()) snap.params.push_back(p->value.Clone());
  snap.optimizer = optimizer.State();
  snap.rng = rng.GetState();
  snap.day_order = days;
  snap.epoch = epoch;
  snap.valid = true;
  return snap;
}

void RestoreSnapshot(const EpochSnapshot& snap, nn::Module* mod,
                     ag::Optimizer* optimizer, Rng* rng,
                     std::vector<int64_t>* days, int64_t* epoch) {
  std::vector<ag::VarPtr> params = mod->Parameters();
  RTGCN_CHECK_EQ(params.size(), snap.params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i]->value = snap.params[i].Clone();
    params[i]->ZeroGrad();
  }
  optimizer->LoadState(snap.optimizer).Abort();
  rng->SetState(snap.rng);
  *days = snap.day_order;
  *epoch = snap.epoch;
}

}  // namespace

ag::VarPtr GradientPredictor::Loss(const ag::VarPtr& scores,
                                   const Tensor& labels) {
  return core::CombinedLoss(scores, labels, alpha());
}

double GradientPredictor::TrainStep(const Tensor& features,
                                    const Tensor& labels,
                                    ag::Optimizer* optimizer,
                                    const TrainOptions& options, Rng* rng) {
  obs::Span span("fit.step", "fit");
  // Destructor-driven so guard early-outs still count: a skipped step paid
  // for its forward pass and belongs in the step-time distribution.
  struct StepRecord {
    uint64_t start_us = obs::NowMicros();
    ~StepRecord() {
      const TrainMetrics& m = GlobalTrainMetrics();
      m.steps->Increment();
      m.step_us->Record(obs::ElapsedMicrosSince(start_us));
    }
  } record;
  optimizer->ZeroGrad();
  ag::VarPtr scores = Forward(features, rng);
  ag::VarPtr loss = Loss(scores, labels);
  const double loss_value = loss->value.item();
  TrainingGuard* guard = this->guard();
  if (guard && !guard->StepLossOk(loss_value)) return loss_value;
  ag::Backward(loss);
  const float norm = optimizer->ClipGradNorm(options.grad_clip);
  if (guard && !guard->GradNormOk(norm)) return loss_value;
  optimizer->Step();
  if (guard) guard->OnGoodStep(loss_value);
  return loss_value;
}

void GradientPredictor::Fit(const market::WindowDataset& data,
                            const std::vector<int64_t>& train_days,
                            const TrainOptions& options) {
  RTGCN_CHECK(!train_days.empty());
  rng_ = std::make_unique<Rng>(options.seed);
  nn::Module* mod = module();
  mod->SetTraining(true);
  ag::Adam optimizer(mod->Parameters(), options.learning_rate, 0.9f, 0.999f,
                     1e-8f, options.weight_decay);
  guard_ = options.guard.enabled
               ? std::make_unique<TrainingGuard>(options.guard,
                                                 options.learning_rate)
               : nullptr;

  std::vector<int64_t> days = train_days;
  int64_t start_epoch = 0;
  std::unique_ptr<CheckpointManager> checkpoints;
  if (!options.checkpoint_dir.empty()) {
    checkpoints = std::make_unique<CheckpointManager>(CheckpointManager::Options{
        options.checkpoint_dir, options.checkpoint_every,
        options.checkpoint_keep});
    checkpoints->Init().Abort();
    if (options.resume) {
      nn::TrainingState state;
      const Status status = checkpoints->LoadLatest(mod, &state);
      if (status.ok()) {
        start_epoch = state.epoch;
        if (state.has_optimizer) optimizer.LoadState(state.optimizer).Abort();
        if (state.has_rng) rng_->SetState(state.rng);
        if (state.has_trainer && state.day_order.size() == days.size()) {
          // Restore the shuffle-in-progress so the next epoch's shuffle
          // permutes exactly what the uninterrupted run would have seen.
          days = state.day_order;
        }
        RTGCN_LOG(Info) << name() << " resumed from "
                        << options.checkpoint_dir << " at epoch "
                        << start_epoch;
      } else if (status.code() != StatusCode::kNotFound) {
        RTGCN_LOG(Warning) << name() << " resume failed: "
                           << status.ToString();
      }
    }
  }

  const bool rollback_armed =
      guard_ && options.guard.policy == GuardPolicy::kRollback;
  EpochSnapshot snapshot;

  // Cumulative baseline: the telemetry delta at the end isolates this Fit's
  // contribution to the process-global registry.
  const obs::RegistrySnapshot fit_base = obs::Registry::Global().Snapshot();
  fit_stats_.telemetry = FitTelemetry{};

  Stopwatch watch;
  Stopwatch epoch_watch;  // restarted per completed epoch, not per attempt
  int64_t rollbacks = 0;
  for (int64_t epoch = start_epoch; epoch < options.epochs;) {
    obs::Span epoch_span("fit.epoch", "fit");
    // The pre-shuffle epoch state is the rollback target: restoring it and
    // re-entering the loop replays this epoch (fresh shuffle, decayed LR).
    if (rollback_armed) {
      snapshot = TakeSnapshot(mod, optimizer, *rng_, days, epoch);
    }
    rng_->Shuffle(&days);
    double epoch_loss = 0;
    bool rolled_back = false;
    for (int64_t day : days) {
      epoch_loss += TrainStep(data.Features(day), data.Labels(day), &optimizer,
                              options, rng_.get());
      if (guard_ && guard_->aborted()) break;
      if (guard_ && guard_->rollback_pending()) {
        // Prefer the newest on-disk checkpoint (PR 2's CheckpointManager);
        // fall back to the in-memory epoch snapshot.
        bool restored = false;
        if (checkpoints) {
          nn::TrainingState state;
          if (checkpoints->LoadLatest(mod, &state).ok()) {
            if (state.has_optimizer) {
              optimizer.LoadState(state.optimizer).Abort();
            }
            if (state.has_rng) rng_->SetState(state.rng);
            if (state.has_trainer && state.day_order.size() == days.size()) {
              days = state.day_order;
            }
            for (auto& p : mod->Parameters()) p->ZeroGrad();
            epoch = state.epoch;
            restored = true;
          }
        }
        if (!restored && snapshot.valid) {
          RestoreSnapshot(snapshot, mod, &optimizer, rng_.get(), &days,
                          &epoch);
          restored = true;
        }
        const float new_lr = guard_->CommitRollback();
        if (restored) {
          optimizer.SetLearningRate(new_lr);
          ++rollbacks;
          rolled_back = true;
          RTGCN_LOG(Warning) << name() << " rolled back to epoch " << epoch
                             << ", lr " << new_lr;
        } else {
          // Nothing to restore (first epoch, no checkpoint yet): keep the
          // decayed LR and continue — the bad step was already skipped.
          optimizer.SetLearningRate(new_lr);
        }
        if (rolled_back) break;
      }
    }
    if (guard_ && guard_->aborted()) {
      RTGCN_LOG(Error) << name() << " training aborted by guard after "
                       << guard_->interventions() << " interventions";
      break;
    }
    if (rolled_back) continue;
    if (options.verbose) {
      RTGCN_LOG(Info) << name() << " epoch " << epoch << " loss "
                      << epoch_loss / static_cast<double>(days.size());
    }
    ++epoch;
    GlobalTrainMetrics().epochs->Increment();
    fit_stats_.telemetry.epoch_seconds.push_back(epoch_watch.ElapsedSeconds());
    epoch_watch.Restart();
    if (checkpoints &&
        (checkpoints->ShouldSave(epoch) || epoch == options.epochs)) {
      nn::TrainingState state;
      state.optimizer = optimizer.State();
      state.has_optimizer = true;
      state.rng = rng_->GetState();
      state.has_rng = true;
      state.epoch = epoch;
      state.day_cursor = 0;
      state.day_order = days;
      state.has_trainer = true;
      const Status status = checkpoints->Save(*mod, state);
      if (!status.ok()) {
        RTGCN_LOG(Warning) << name() << " checkpoint save failed: "
                           << status.ToString();
      }
    }
  }
  fit_stats_.train_seconds = watch.ElapsedSeconds();
  fit_stats_.epochs = options.epochs;
  fit_stats_.telemetry.metrics =
      obs::Registry::Global().Snapshot().DeltaSince(fit_base);
  if (guard_) {
    fit_stats_.guard_events = guard_->events();
    fit_stats_.guard_rollbacks = rollbacks;
    fit_stats_.guard_aborted = guard_->aborted();
    guard_.reset();
  } else {
    fit_stats_.guard_events.clear();
    fit_stats_.guard_rollbacks = 0;
    fit_stats_.guard_aborted = false;
  }
  mod->SetTraining(false);
}

Tensor GradientPredictor::Predict(const market::WindowDataset& data,
                                  int64_t day) {
  return Score(data.Features(day));
}

Tensor GradientPredictor::Score(const Tensor& features) {
  ag::NoGradGuard no_grad;
  module()->SetTraining(false);
  if (!rng_) rng_ = std::make_unique<Rng>(1);
  return Forward(features, rng_.get())->value;
}

Status GradientPredictor::ExportSnapshot(const std::string& path) {
  return nn::SaveParameters(*module(), path);
}

}  // namespace rtgcn::harness
