// The single clock source of the observability layer (and, through
// Stopwatch, of every timing number the repo reports).
//
// Everything is steady_clock-based: metrics latencies, tracer span
// timestamps and the bench stopwatches all read the same monotonic clock,
// so an NTP step adjustment (which moves system_clock, not steady_clock)
// can never produce a negative or wildly inflated latency sample. A
// test-only override lets regression tests simulate a misbehaving clock
// and verify that every consumer clamps instead of corrupting histograms.
#ifndef RTGCN_OBS_CLOCK_H_
#define RTGCN_OBS_CLOCK_H_

#include <cstdint>

namespace rtgcn::obs {

/// Microseconds on the process-wide monotonic timeline (steady_clock).
uint64_t NowMicros();

/// Elapsed microseconds since `start_us` (a previous NowMicros reading),
/// clamped to zero if the clock appears to have moved backwards. All
/// latency recording must go through this helper: a raw subtraction of a
/// skewed clock would wrap to ~2^64 µs and poison a histogram forever.
uint64_t ElapsedMicrosSince(uint64_t start_us);

/// Test hook: replaces NowMicros with `fn` (nullptr restores the real
/// clock). Not for production use — the override is process-global.
void SetClockForTesting(uint64_t (*fn)());

}  // namespace rtgcn::obs

#endif  // RTGCN_OBS_CLOCK_H_
