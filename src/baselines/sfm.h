// SFM: State Frequency Memory recurrent network (Zhang, Aggarwal & Qi,
// KDD 2017). An LSTM-style cell whose memory is decomposed into K frequency
// components; real/imaginary states are modulated by cos/sin(ω_k t) and the
// per-frequency amplitudes are aggregated into the hidden state.
#ifndef RTGCN_BASELINES_SFM_H_
#define RTGCN_BASELINES_SFM_H_

#include <string>

#include "harness/gradient_predictor.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace rtgcn::baselines {

/// \brief SFM regression baseline (REG row of Table IV).
class SfmPredictor : public harness::GradientPredictor {
 public:
  SfmPredictor(int64_t num_features, int64_t hidden, int64_t num_frequencies,
               uint64_t seed);

  std::string name() const override { return "SFM"; }

 protected:
  nn::Module* module() override { return &net_; }
  ag::VarPtr Forward(const Tensor& features, Rng* rng) override;
  float alpha() const override { return 0.0f; }  // pure regression

 private:
  struct Net : nn::Module {
    Net(int64_t input, int64_t hidden, int64_t freqs, Rng* rng);

    int64_t input;
    int64_t hidden;
    int64_t freqs;
    // Gate projections (state forget, frequency forget, input, modulation,
    // output), each from [x, h].
    ag::VarPtr w_gates;  // [input + hidden, 4*hidden + freqs]
    ag::VarPtr b_gates;  // [4*hidden + freqs]
    // Frequency aggregation of amplitudes -> hidden.
    ag::VarPtr freq_weights;  // [1, 1, freqs]
    ag::VarPtr agg_bias;      // [hidden]
    nn::Linear* scorer;

   private:
    std::unique_ptr<nn::Linear> scorer_storage_;
  };

  Rng init_rng_;
  Net net_;
};

}  // namespace rtgcn::baselines

#endif  // RTGCN_BASELINES_SFM_H_
