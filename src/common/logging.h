// Minimal leveled logging and check macros (RocksDB/Arrow DCHECK style).
#ifndef RTGCN_COMMON_LOGGING_H_
#define RTGCN_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace rtgcn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are suppressed. Initialized from
/// the RTGCN_LOG_LEVEL environment variable ("debug"/"info"/"warning"/
/// "error" or 0-3, default info); SetLogLevel overrides it.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false)
      : level_(level), fatal_(fatal) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }

  ~LogMessage() {
    if (fatal_ || level_ >= GetLogLevel()) {
      std::cerr << stream_.str() << std::endl;
    }
    if (fatal_) std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  static const char* LevelName(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarning: return "WARN";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
  }

  std::ostringstream stream_;
  LogLevel level_;
  bool fatal_;
};

// Swallows the streamed expression when a check passes.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) { return *this; }
};

// Turns a streamed expression into void so it can sit in a ternary.
// operator& binds looser than operator<<, so the whole chain runs first.
struct Voidify {
  void operator&(std::ostream&) {}
  void operator&(NullStream&) {}
};

inline NullStream& DevNull() {
  static NullStream stream;
  return stream;
}

}  // namespace internal

#define RTGCN_LOG(level)                                                  \
  ::rtgcn::internal::LogMessage(::rtgcn::LogLevel::k##level, __FILE__,    \
                                __LINE__)                                 \
      .stream()

// Fatal invariant check: aborts with message when `cond` is false. Used for
// programming errors (bad shapes, indexing bugs), not for recoverable errors.
#define RTGCN_CHECK(cond)                                                  \
  (cond) ? (void)0                                                         \
         : ::rtgcn::internal::Voidify() &                                  \
               ::rtgcn::internal::LogMessage(::rtgcn::LogLevel::kError,    \
                                             __FILE__, __LINE__, true)     \
                   .stream()                                               \
               << "Check failed: " #cond " "

#define RTGCN_CHECK_EQ(a, b) RTGCN_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define RTGCN_CHECK_NE(a, b) RTGCN_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define RTGCN_CHECK_LT(a, b) RTGCN_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define RTGCN_CHECK_LE(a, b) RTGCN_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define RTGCN_CHECK_GT(a, b) RTGCN_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define RTGCN_CHECK_GE(a, b) RTGCN_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define RTGCN_DCHECK(cond)                    \
  true ? (void)0                              \
       : ::rtgcn::internal::Voidify() &       \
             ::rtgcn::internal::DevNull() << !(cond)
#else
#define RTGCN_DCHECK(cond) RTGCN_CHECK(cond)
#endif

}  // namespace rtgcn

#endif  // RTGCN_COMMON_LOGGING_H_
