// Real-data workflow example: the full production path a downstream user
// follows with their own data —
//   1. load a close-price panel and a relation list from CSV,
//   2. build the window dataset and train RT-GCN (T),
//   3. checkpoint the trained model, reload it into a fresh instance,
//   4. verify the reloaded model reproduces the predictions, and score
//      today's ranking.
//
// Ships with a tiny bundled dataset written to /tmp so the example is
// runnable out of the box; point --prices/--relations at your own files.
#include <cstdio>
#include <fstream>

#include "baselines/rtgcn_predictor.h"
#include "common/flags.h"
#include "market/csv_loader.h"
#include "market/dataset.h"
#include "nn/serialize.h"
#include "rank/metrics.h"
#include "tensor/ops.h"

namespace {

// Writes a small demonstration dataset (12 tickers, 160 days, two relation
// types) in the loader's format.
void WriteDemoData(const std::string& prices_path,
                   const std::string& relations_path) {
  using rtgcn::Rng;
  Rng rng(2024);
  const int kStocks = 12, kDays = 160;
  std::ofstream prices(prices_path);
  prices << "day";
  for (int i = 0; i < kStocks; ++i) prices << ",STK" << i;
  prices << "\n";
  std::vector<double> level(kStocks, 100.0);
  for (int t = 0; t < kDays; ++t) {
    prices << t;
    const double sector_a = rng.Gaussian(0, 0.008);
    const double sector_b = rng.Gaussian(0, 0.008);
    for (int i = 0; i < kStocks; ++i) {
      const double sector = i < 6 ? sector_a : sector_b;
      level[i] *= 1.0 + 3e-4 + sector + rng.Gaussian(0, 0.01);
      prices << "," << level[i];
    }
    prices << "\n";
  }
  std::ofstream rels(relations_path);
  rels << "stock_i,stock_j,type\n";
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) rels << "STK" << i << ",STK" << j << ",0\n";
  }
  for (int i = 6; i < 12; ++i) {
    for (int j = i + 1; j < 12; ++j) rels << "STK" << i << ",STK" << j << ",1\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rtgcn;
  std::string prices_path;
  std::string relations_path;
  int64_t relation_types = 2;
  int64_t epochs = 10;
  std::string checkpoint_dir;
  bool resume = true;
  bool strict = false;
  FlagSet fs("Load a close-price panel and relation list from CSV, train "
             "RT-GCN (T), checkpoint, reload, and score today's ranking.");
  fs.Register("prices", &prices_path,
              "close-price CSV (empty = write and use bundled demo data)");
  fs.Register("relations", &relations_path, "relation-list CSV");
  fs.Register("relation_types", &relation_types,
              "number of relation types in the relation CSV");
  fs.Register("epochs", &epochs, "training epochs");
  fs.Register("checkpoint_dir", &checkpoint_dir,
              "checkpoint every epoch into this directory (empty = off)");
  fs.Register("resume", &resume,
              "resume from the latest checkpoint if one exists");
  fs.Register("strict", &strict,
              "fail on the first ingestion blemish instead of repairing");
  const Status flag_status = fs.Parse(argc, argv);
  if (fs.help_requested()) {
    std::printf("%s", fs.Usage(argv[0]).c_str());
    return 0;
  }
  flag_status.Abort();

  if (prices_path.empty()) {
    prices_path = "/tmp/rtgcn_demo_prices.csv";
    relations_path = "/tmp/rtgcn_demo_relations.csv";
    WriteDemoData(prices_path, relations_path);
    std::printf("no --prices given; wrote demo data to %s\n",
                prices_path.c_str());
  }

  // 1. Load. Real exports are rarely pristine, so the default here is
  // tolerant ingestion: bad cells are forward-filled, stocks trading on
  // fewer than 98% of days are dropped, and bad relation rows are skipped —
  // with every repair accounted in a LoadReport. Pass --strict to fail on
  // the first blemish instead.
  market::LoadOptions load_options;
  load_options.mode = strict ? market::LoadOptions::Mode::kStrict
                             : market::LoadOptions::Mode::kTolerant;
  market::LoadReport report;
  market::PricePanel panel =
      market::LoadPricePanel(prices_path, load_options, &report).ValueOrDie();
  graph::RelationTensor relations =
      market::LoadRelations(relations_path, panel, relation_types,
                            load_options, &report)
          .ValueOrDie();
  std::printf("loaded %zu tickers, %lld days, %lld related pairs\n",
              panel.tickers.size(), (long long)panel.prices.dim(0),
              (long long)relations.num_edges());
  std::printf("ingestion report: %s\n", report.Summary().c_str());

  // 2. Train on everything except the final 20 days.
  market::WindowDataset dataset(panel.prices, /*window=*/10,
                                /*num_features=*/4);
  const int64_t boundary = dataset.last_day() - 20;
  market::DatasetSplit split = SplitByDay(dataset, boundary);
  core::RtGcnConfig cfg;
  cfg.strategy = core::Strategy::kTimeSensitive;
  cfg.window = 10;
  baselines::RtGcnPredictor model(relations, cfg, /*alpha=*/0.1f, /*seed=*/7);
  harness::TrainOptions opts;
  opts.epochs = epochs;
  // Crash-safe training: with --checkpoint_dir the run saves every epoch
  // and a re-run resumes from the latest checkpoint instead of restarting.
  opts.checkpoint_dir = checkpoint_dir;
  opts.resume = resume;
  // Divergence supervision: a NaN/Inf loss or gradient rolls the run back
  // to the last good state (checkpoint when available, else an in-memory
  // epoch snapshot) and halves the learning rate before continuing.
  opts.guard.policy = harness::GuardPolicy::kRollback;
  model.Fit(dataset, split.train_days, opts);
  std::printf("trained %lld epochs in %.1fs\n", (long long)opts.epochs,
              model.fit_stats().train_seconds);
  for (const auto& event : model.fit_stats().guard_events) {
    std::printf("guard intervention: %s\n", event.ToString().c_str());
  }

  // 3. Checkpoint and reload into a fresh model.
  const std::string ckpt = "/tmp/rtgcn_demo.ckpt";
  nn::SaveParameters(model.model(), ckpt).Abort();
  baselines::RtGcnPredictor restored(relations, cfg, 0.1f, /*seed=*/999);
  nn::LoadParameters(restored.mutable_model(), ckpt).Abort();

  // 4. Verify equivalence and print today's ranking.
  const int64_t today = dataset.last_day();
  Tensor original_scores = model.Predict(dataset, today);
  Tensor restored_scores = restored.Predict(dataset, today);
  std::printf("checkpoint round-trip exact: %s\n",
              AllClose(original_scores, restored_scores, 0, 0) ? "yes" : "NO");

  std::printf("\ntop-5 ranking for the next trading day:\n");
  for (int64_t i : rank::TopK(restored_scores, 5)) {
    std::printf("  %-6s score %+.4f\n", panel.tickers[i].c_str(),
                restored_scores.data()[i]);
  }
  return 0;
}
