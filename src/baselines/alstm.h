// A-LSTM: adversarially trained LSTM trend classifier (Feng et al., IJCAI
// 2019). The clean pass is a standard LSTM → 3-class softmax; an FGSM
// perturbation of the latent representation provides the adversarial term.
#ifndef RTGCN_BASELINES_ALSTM_H_
#define RTGCN_BASELINES_ALSTM_H_

#include <string>

#include "harness/gradient_predictor.h"
#include "nn/linear.h"
#include "nn/rnn.h"

namespace rtgcn::baselines {

/// \brief Adversarial LSTM classifier (CLF row of Table IV).
class ALstmPredictor : public harness::GradientPredictor {
 public:
  ALstmPredictor(int64_t num_features, int64_t hidden, uint64_t seed,
                 float epsilon = 1e-2f, float adv_weight = 0.5f);

  std::string name() const override { return "A-LSTM"; }
  bool ranks() const override { return false; }

  Tensor Predict(const market::WindowDataset& data, int64_t day) override;

 protected:
  nn::Module* module() override { return &net_; }
  ag::VarPtr Forward(const Tensor& features, Rng* rng) override;
  double TrainStep(const Tensor& features, const Tensor& labels,
                   ag::Optimizer* optimizer,
                   const harness::TrainOptions& options, Rng* rng) override;

 private:
  struct Net : nn::Module {
    Net(int64_t num_features, int64_t hidden, Rng* rng)
        : lstm(num_features, hidden, rng), head(hidden, 3, rng) {
      RegisterModule(&lstm);
      RegisterModule(&head);
    }
    nn::Lstm lstm;
    nn::Linear head;
  };

  float epsilon_;
  float adv_weight_;
  Rng init_rng_;
  Net net_;
};

}  // namespace rtgcn::baselines

#endif  // RTGCN_BASELINES_ALSTM_H_
