// Serving quickstart, client side: a minimal line-protocol client for
// serve_server.
//
//   ./serve_client --day 270 --stock 3            SCORE one stock
//   ./serve_client --day 270 --k 5                RANK top-5 of the day
//   ./serve_client --stats 1                      dump server metrics
//   ./serve_client --day 270 --k 5 --repeat 100   re-issue the query
//
// Every reply line starts with "OK <model_version> ..." so a caller can
// tell which published checkpoint produced the answer.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "common/flags.h"
#include "common/logging.h"

namespace {

int Connect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  RTGCN_CHECK(fd >= 0) << "socket() failed";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  RTGCN_CHECK(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)) == 0)
      << "cannot connect to 127.0.0.1:" << port
      << " — is serve_server running?";
  return fd;
}

void SendLine(int fd, const std::string& line) {
  const std::string wire = line + "\n";
  size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n = ::write(fd, wire.data() + off, wire.size() - off);
    RTGCN_CHECK(n > 0) << "write failed";
    off += static_cast<size_t>(n);
  }
}

// Reads one '\n'-terminated line (the protocol is strictly one reply line
// per request, except STATS which streams until "END").
std::string ReadLine(int fd, std::string* buffer) {
  for (;;) {
    const size_t pos = buffer->find('\n');
    if (pos != std::string::npos) {
      std::string line = buffer->substr(0, pos);
      buffer->erase(0, pos + 1);
      return line;
    }
    char chunk[512];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    RTGCN_CHECK(n > 0) << "server closed the connection";
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rtgcn;
  auto flags = Flags::Parse(argc, argv).ValueOrDie();
  const int port = static_cast<int>(flags.GetInt("port", 7070));
  const int64_t day = flags.GetInt("day", -1);
  const int64_t stock = flags.GetInt("stock", -1);
  const int64_t k = flags.GetInt("k", 5);
  const int64_t repeat = flags.GetInt("repeat", 1);
  const bool stats = flags.GetBool("stats", false);

  const int fd = Connect(port);
  std::string buffer;

  if (stats) {
    SendLine(fd, "STATS");
    for (;;) {
      const std::string line = ReadLine(fd, &buffer);
      if (line == "END") break;
      std::printf("%s\n", line.c_str());
    }
  } else {
    RTGCN_CHECK(day >= 0) << "pass --day (and optionally --stock or --k)";
    std::string request;
    if (stock >= 0) {
      request = "SCORE " + std::to_string(day) + " " + std::to_string(stock);
    } else {
      request = "RANK " + std::to_string(day) + " " + std::to_string(k);
    }
    for (int64_t i = 0; i < repeat; ++i) {
      SendLine(fd, request);
      std::printf("%s\n", ReadLine(fd, &buffer).c_str());
    }
  }
  SendLine(fd, "QUIT");
  ::close(fd);
  return 0;
}
