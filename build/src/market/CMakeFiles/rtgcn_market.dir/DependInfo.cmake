
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/market/csv_loader.cc" "src/market/CMakeFiles/rtgcn_market.dir/csv_loader.cc.o" "gcc" "src/market/CMakeFiles/rtgcn_market.dir/csv_loader.cc.o.d"
  "/root/repo/src/market/dataset.cc" "src/market/CMakeFiles/rtgcn_market.dir/dataset.cc.o" "gcc" "src/market/CMakeFiles/rtgcn_market.dir/dataset.cc.o.d"
  "/root/repo/src/market/market.cc" "src/market/CMakeFiles/rtgcn_market.dir/market.cc.o" "gcc" "src/market/CMakeFiles/rtgcn_market.dir/market.cc.o.d"
  "/root/repo/src/market/relation_generator.cc" "src/market/CMakeFiles/rtgcn_market.dir/relation_generator.cc.o" "gcc" "src/market/CMakeFiles/rtgcn_market.dir/relation_generator.cc.o.d"
  "/root/repo/src/market/simulator.cc" "src/market/CMakeFiles/rtgcn_market.dir/simulator.cc.o" "gcc" "src/market/CMakeFiles/rtgcn_market.dir/simulator.cc.o.d"
  "/root/repo/src/market/universe.cc" "src/market/CMakeFiles/rtgcn_market.dir/universe.cc.o" "gcc" "src/market/CMakeFiles/rtgcn_market.dir/universe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/rtgcn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/rtgcn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/rtgcn_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rtgcn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rtgcn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
