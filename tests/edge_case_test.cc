// Edge cases and failure-injection tests: degenerate shapes, extreme
// values, and malformed inputs must fail loudly or behave sanely — never
// corrupt memory or return garbage silently.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "autograd/optimizer.h"
#include "graph/adjacency.h"
#include "graph/relation_tensor.h"
#include "market/dataset.h"
#include "rank/metrics.h"
#include "tensor/ops.h"

namespace rtgcn {
namespace {

TEST(EdgeCaseTest, ZeroSizedDimensions) {
  Tensor empty = Tensor::Zeros({0, 4});
  EXPECT_EQ(empty.numel(), 0);
  Tensor summed = Sum(empty, 0);
  EXPECT_EQ(summed.shape(), (Shape{4}));
  EXPECT_TRUE(AllClose(summed, Tensor::Zeros({4})));
  // Elementwise on empty tensors is a no-op, not a crash.
  Tensor still_empty = Add(empty, empty);
  EXPECT_EQ(still_empty.numel(), 0);
}

TEST(EdgeCaseTest, SingleElementEverything) {
  Tensor one = Tensor::Scalar(2.0f);
  EXPECT_FLOAT_EQ(Mul(one, one).item(), 4.0f);
  EXPECT_FLOAT_EQ(SumAll(one).item(), 2.0f);
  Tensor m({1, 1}, {3.0f});
  EXPECT_FLOAT_EQ(MatMul(m, m).item(), 9.0f);
  EXPECT_FLOAT_EQ(Softmax(m, 1).item(), 1.0f);
}

TEST(EdgeCaseTest, SliceFullAndEmptyRange) {
  Tensor a({4, 2});
  a.Fill(1.0f);
  EXPECT_TRUE(AllClose(Slice(a, 0, 0, 4), a));
  Tensor empty = Slice(a, 0, 2, 2);
  EXPECT_EQ(empty.dim(0), 0);
}

TEST(EdgeCaseTest, SoftmaxWithExtremeValues) {
  Tensor a({1, 3}, {1e30f, -1e30f, 0.0f});
  Tensor s = Softmax(a, 1);
  EXPECT_FALSE(std::isnan(s.data()[0]));
  EXPECT_NEAR(s.data()[0], 1.0f, 1e-5);
  EXPECT_NEAR(s.data()[1], 0.0f, 1e-5);
}

TEST(EdgeCaseTest, RankingWithAllEqualScores) {
  Tensor scores = Tensor::Zeros({5});
  Tensor labels({5}, {0.01f, 0.02f, 0.03f, 0.04f, 0.05f});
  // Stable tie-break: picks index 0, which has true rank 5.
  EXPECT_DOUBLE_EQ(rank::ReciprocalRankTop1(scores, labels), 0.2);
  EXPECT_EQ(rank::TopK(scores, 3), (std::vector<int64_t>{0, 1, 2}));
}

TEST(EdgeCaseTest, RankingWithNegativeEverything) {
  Tensor scores({3}, {-1, -2, -3});
  Tensor labels({3}, {-0.1f, -0.2f, -0.3f});
  EXPECT_DOUBLE_EQ(rank::ReciprocalRankTop1(scores, labels), 1.0);
  EXPECT_NEAR(rank::TopKReturn(scores, labels, 2), -0.15, 1e-6);
}

TEST(EdgeCaseTest, EmptyRelationTensorNormalizesToIdentity) {
  graph::RelationTensor rel(4, 2);  // no edges at all
  Tensor norm = graph::NormalizedAdjacency(rel);
  EXPECT_TRUE(AllClose(norm, Tensor::Eye(4)));
  EXPECT_DOUBLE_EQ(rel.RelationRatio(), 0.0);
  EXPECT_TRUE(rel.EdgeList().empty());
}

TEST(EdgeCaseTest, SingleStockRelationTensor) {
  graph::RelationTensor rel(1, 1);
  EXPECT_EQ(rel.num_edges(), 0);
  EXPECT_FALSE(rel.AddRelation(0, 0, 0).ok());
  EXPECT_DOUBLE_EQ(rel.RelationRatio(), 0.0);  // no pairs: defined as 0
}

TEST(EdgeCaseTest, WindowDatasetMinimalSizes) {
  // Smallest panel that supports window 1 with 1 feature: 2 days.
  Tensor prices({2, 1}, {100.0f, 110.0f});
  market::WindowDataset ds(prices, 1, 1);
  EXPECT_EQ(ds.first_day(), 0);
  EXPECT_EQ(ds.last_day(), 0);
  Tensor x = ds.Features(0);
  EXPECT_EQ(x.shape(), (Shape{1, 1, 1}));
  EXPECT_FLOAT_EQ(x.data()[0], 1.0f);
  EXPECT_NEAR(ds.Labels(0).data()[0], 0.1f, 1e-6);
}

TEST(EdgeCaseTest, BroadcastScalarAgainstEverything) {
  Tensor s = Tensor::Scalar(2.0f);
  Tensor cube = Tensor::Ones({2, 3, 4});
  Tensor out = Mul(cube, s);
  EXPECT_EQ(out.shape(), cube.shape());
  EXPECT_FLOAT_EQ(out.data()[23], 2.0f);
}

TEST(EdgeCaseTest, GradThroughDegenerateShapes) {
  // [1, 1] matmul chain still backpropagates.
  auto a = ag::MakeVariable(Tensor({1, 1}, {3.0f}), true);
  auto y = ag::SumAll(ag::MatMul(a, a));
  ag::Backward(y);
  EXPECT_FLOAT_EQ(a->grad.item(), 6.0f);
}

TEST(EdgeCaseTest, DropoutFullKeepAndNearFullDrop) {
  Rng rng(1);
  auto x = ag::Constant(Tensor::Ones({10}));
  // p = 0: exact identity (same object).
  auto kept = ag::Dropout(x, 0.0f, true, &rng);
  EXPECT_TRUE(AllClose(kept->value, x->value, 0, 0));
  // p close to 1: output entries are 0 or the huge inverse-keep scale.
  auto dropped = ag::Dropout(x, 0.99f, true, &rng);
  for (int64_t i = 0; i < 10; ++i) {
    const float v = dropped->value.data()[i];
    EXPECT_TRUE(v == 0.0f || v > 99.0f);
  }
}

TEST(EdgeCaseTest, ClipGradNormWithZeroGradients) {
  auto p = ag::MakeVariable(Tensor::Ones({3}), true);
  ag::Sgd opt({p}, 0.1f);
  opt.ClipGradNorm(1.0f);  // no gradients defined: must not crash
  p->AccumulateGrad(Tensor::Zeros({3}));
  opt.ClipGradNorm(1.0f);  // zero norm: no rescale, no division by zero
  EXPECT_FLOAT_EQ(Norm(p->grad), 0.0f);
}

}  // namespace
}  // namespace rtgcn
