#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "autograd/ops.h"
#include "core/rtgcn.h"
#include "market/csv_loader.h"
#include "market/dataset.h"
#include "nn/linear.h"
#include "nn/serialize.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace rtgcn {
namespace {

std::string TempPath(const std::string& name) { return "/tmp/" + name; }

TEST(SerializeTest, RoundTripLinear) {
  Rng rng(1);
  nn::Linear a(4, 3, &rng);
  nn::Linear b(4, 3, &rng);  // different init
  const std::string path = TempPath("rtgcn_linear.ckpt");
  nn::SaveParameters(a, path).Abort();
  nn::LoadParameters(&b, path).Abort();
  EXPECT_TRUE(AllClose(a.weight()->value, b.weight()->value, 0, 0));
  EXPECT_TRUE(AllClose(a.bias()->value, b.bias()->value, 0, 0));
  std::remove(path.c_str());
}

TEST(SerializeTest, RoundTripRtGcnPreservesPredictions) {
  graph::RelationTensor rel(5, 2);
  rel.AddRelation(0, 1, 0).Abort();
  rel.AddRelation(2, 3, 1).Abort();
  core::RtGcnConfig cfg;
  cfg.window = 6;
  cfg.num_features = 3;
  cfg.relational_filters = 4;
  cfg.dropout = 0.0f;
  Rng rng1(7), rng2(99);
  core::RtGcnModel original(rel, cfg, &rng1);
  core::RtGcnModel restored(rel, cfg, &rng2);
  original.SetTraining(false);
  restored.SetTraining(false);

  const std::string path = TempPath("rtgcn_model.ckpt");
  nn::SaveParameters(original, path).Abort();
  nn::LoadParameters(&restored, path).Abort();

  Rng data_rng(3);
  Tensor x = RandomUniform({6, 5, 3}, 0.9f, 1.1f, &data_rng);
  ag::NoGradGuard no_grad;
  Rng fwd(1);
  Tensor y1 = original.Forward(ag::Constant(x), &fwd)->value;
  Tensor y2 = restored.Forward(ag::Constant(x), &fwd)->value;
  EXPECT_TRUE(AllClose(y1, y2, 0, 0));
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchRejected) {
  Rng rng(2);
  nn::Linear small(2, 2, &rng);
  nn::Linear big(3, 3, &rng);
  const std::string path = TempPath("rtgcn_mismatch.ckpt");
  nn::SaveParameters(small, path).Abort();
  Status s = nn::LoadParameters(&big, path);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, GarbageFileRejected) {
  const std::string path = TempPath("rtgcn_garbage.ckpt");
  std::ofstream(path) << "this is not a checkpoint";
  Rng rng(3);
  nn::Linear lin(2, 2, &rng);
  EXPECT_FALSE(nn::LoadParameters(&lin, path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsIoError) {
  Rng rng(4);
  nn::Linear lin(2, 2, &rng);
  EXPECT_EQ(nn::LoadParameters(&lin, "/nonexistent/x.ckpt").code(),
            StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// CSV market loading
// ---------------------------------------------------------------------------

TEST(CsvLoaderTest, LoadsPanelAndRelations) {
  const std::string prices = TempPath("rtgcn_prices.csv");
  std::ofstream(prices) << "day,AAPL,MSFT,GOOG\n"
                           "0,100.5,200.0,50.25\n"
                           "1,101.0,199.0,51.00\n"
                           "2,99.75,201.5,50.50\n";
  auto panel = market::LoadPricePanel(prices).ValueOrDie();
  EXPECT_EQ(panel.tickers,
            (std::vector<std::string>{"AAPL", "MSFT", "GOOG"}));
  EXPECT_EQ(panel.prices.shape(), (Shape{3, 3}));
  EXPECT_FLOAT_EQ(panel.prices.at({1, 0}), 101.0f);
  EXPECT_EQ(panel.TickerIndex("GOOG"), 2);
  EXPECT_EQ(panel.TickerIndex("TSLA"), -1);

  const std::string rels = TempPath("rtgcn_rels.csv");
  std::ofstream(rels) << "stock_i,stock_j,type\n"
                         "AAPL,MSFT,0\n"
                         "AAPL,GOOG,1\n";
  auto relations = market::LoadRelations(rels, panel, 2).ValueOrDie();
  EXPECT_TRUE(relations.HasEdge(0, 1));
  EXPECT_TRUE(relations.HasEdge(0, 2));
  EXPECT_FALSE(relations.HasEdge(1, 2));
  std::remove(prices.c_str());
  std::remove(rels.c_str());
}

TEST(CsvLoaderTest, RejectsBadPrices) {
  const std::string path = TempPath("rtgcn_bad.csv");
  std::ofstream(path) << "day,A\n0,abc\n";
  EXPECT_FALSE(market::LoadPricePanel(path).ok());
  std::ofstream(path) << "day,A\n0,-5\n";
  EXPECT_FALSE(market::LoadPricePanel(path).ok());
  std::remove(path.c_str());
}

TEST(CsvLoaderTest, RejectsUnknownTicker) {
  const std::string prices = TempPath("rtgcn_p2.csv");
  std::ofstream(prices) << "day,A,B\n0,1,2\n";
  auto panel = market::LoadPricePanel(prices).ValueOrDie();
  const std::string rels = TempPath("rtgcn_r2.csv");
  std::ofstream(rels) << "stock_i,stock_j,type\nA,ZZZ,0\n";
  EXPECT_EQ(market::LoadRelations(rels, panel, 1).status().code(),
            StatusCode::kNotFound);
  std::remove(prices.c_str());
  std::remove(rels.c_str());
}

TEST(CsvLoaderTest, LoadedPanelDrivesWindowDataset) {
  // End-to-end: CSV -> panel -> WindowDataset features/labels.
  const std::string path = TempPath("rtgcn_panel.csv");
  std::ofstream out(path);
  out << "day,X,Y\n";
  for (int t = 0; t < 30; ++t) {
    out << t << "," << 100 + t << "," << 200 - t << "\n";
  }
  out.close();
  auto panel = market::LoadPricePanel(path).ValueOrDie();
  market::WindowDataset ds(panel.prices, 5, 2);
  Tensor y = ds.Labels(ds.first_day());
  EXPECT_GT(y.data()[0], 0.0f);  // X rises
  EXPECT_LT(y.data()[1], 0.0f);  // Y falls
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rtgcn
