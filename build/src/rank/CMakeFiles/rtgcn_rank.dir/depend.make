# Empty dependencies file for rtgcn_rank.
# This may be replaced when dependencies are built.
