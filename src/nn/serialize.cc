#include "nn/serialize.h"

#include <cstdint>
#include <cstring>

#include "common/crc32.h"
#include "common/file_util.h"

namespace rtgcn::nn {

namespace {

constexpr uint32_t kMagic = 0x52544743;  // "RTGC"
constexpr uint32_t kVersionLegacy = 1;
constexpr uint32_t kVersion = 2;

// v2 record tags. Unknown tags are a hard error (a v3 that adds records
// must bump the version), so a bit flip in a tag can never silently drop a
// record.
constexpr uint32_t kTagManifest = 0x4D414E49;  // 'MANI'
constexpr uint32_t kTagTensor = 0x54454E53;    // 'TENS'
constexpr uint32_t kTagOptimizer = 0x4F505453; // 'OPTS'
constexpr uint32_t kTagRng = 0x524E4753;       // 'RNGS'
constexpr uint32_t kTagTrainer = 0x54524E52;   // 'TRNR'
constexpr uint32_t kTagEnd = 0x454E4421;       // 'END!'

constexpr int64_t kMaxRank = 64;  // sanity bound on serialized shapes

// ---------------------------------------------------------------------------
// Little buffer writer
// ---------------------------------------------------------------------------

void AppendRaw(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

void AppendU32(std::string* out, uint32_t v) { AppendRaw(out, &v, sizeof(v)); }
void AppendU64(std::string* out, uint64_t v) { AppendRaw(out, &v, sizeof(v)); }
void AppendI64(std::string* out, int64_t v) { AppendRaw(out, &v, sizeof(v)); }
void AppendF64(std::string* out, double v) { AppendRaw(out, &v, sizeof(v)); }
void AppendU8(std::string* out, uint8_t v) { AppendRaw(out, &v, sizeof(v)); }

void AppendString(std::string* out, const std::string& s) {
  AppendU64(out, s.size());
  out->append(s);
}

void AppendTensor(std::string* out, const Tensor& t) {
  AppendU64(out, static_cast<uint64_t>(t.ndim()));
  for (int64_t d : t.shape()) AppendU64(out, static_cast<uint64_t>(d));
  AppendRaw(out, t.data(), static_cast<size_t>(t.numel()) * sizeof(float));
}

void AppendRecord(std::string* out, uint32_t tag, const std::string& payload) {
  AppendU32(out, tag);
  AppendU64(out, payload.size());
  out->append(payload);
  AppendU32(out, Crc32(payload));
}

// ---------------------------------------------------------------------------
// Bounds-checked buffer reader
// ---------------------------------------------------------------------------

class Cursor {
 public:
  Cursor(const char* data, size_t size) : p_(data), remaining_(size) {}

  size_t remaining() const { return remaining_; }

  bool ReadRaw(void* out, size_t size) {
    if (remaining_ < size) return false;
    std::memcpy(out, p_, size);
    p_ += size;
    remaining_ -= size;
    return true;
  }

  bool ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadI64(int64_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadF64(double* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU8(uint8_t* v) { return ReadRaw(v, sizeof(*v)); }

  bool ReadString(std::string* s) {
    uint64_t len = 0;
    if (!ReadU64(&len) || len > remaining_) return false;
    s->assign(p_, len);
    p_ += len;
    remaining_ -= len;
    return true;
  }

  /// Returns a sub-cursor over the next `size` bytes and advances past them.
  bool Slice(size_t size, Cursor* sub) {
    if (remaining_ < size) return false;
    *sub = Cursor(p_, size);
    p_ += size;
    remaining_ -= size;
    return true;
  }

  const char* data() const { return p_; }

 private:
  const char* p_;
  size_t remaining_;
};

Status ReadShape(Cursor* in, Shape* shape, const std::string& path) {
  uint64_t rank = 0;
  if (!in->ReadU64(&rank)) return Status::IoError("truncated ", path);
  if (rank > kMaxRank) {
    return Status::InvalidArgument("implausible tensor rank ", rank, " in ",
                                   path);
  }
  shape->clear();
  shape->reserve(rank);
  for (uint64_t d = 0; d < rank; ++d) {
    uint64_t dim = 0;
    if (!in->ReadU64(&dim)) return Status::IoError("truncated ", path);
    if (dim > (uint64_t{1} << 48)) {
      return Status::InvalidArgument("implausible dimension ", dim, " in ",
                                     path);
    }
    shape->push_back(static_cast<int64_t>(dim));
  }
  return Status::OK();
}

Status ReadTensor(Cursor* in, Tensor* out, const std::string& path) {
  Shape shape;
  RTGCN_RETURN_NOT_OK(ReadShape(in, &shape, path));
  const uint64_t numel = static_cast<uint64_t>(ShapeNumel(shape));
  if (numel * sizeof(float) > in->remaining()) {
    return Status::IoError("truncated tensor data in ", path);
  }
  Tensor value(shape);
  if (!in->ReadRaw(value.data(), numel * sizeof(float))) {
    return Status::IoError("truncated tensor data in ", path);
  }
  *out = value;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// v2 writer
// ---------------------------------------------------------------------------

std::string EncodeCheckpoint(const Module& module,
                             const TrainingState* state) {
  const auto named = module.NamedParameters();
  std::string out;
  uint32_t header[2] = {kMagic, kVersion};
  AppendRaw(&out, header, sizeof(header));

  std::string manifest;
  AppendU64(&manifest, named.size());
  for (const auto& [name, p] : named) {
    AppendString(&manifest, name);
    AppendU64(&manifest, static_cast<uint64_t>(p->value.ndim()));
    for (int64_t d : p->value.shape()) {
      AppendU64(&manifest, static_cast<uint64_t>(d));
    }
  }
  AppendRecord(&out, kTagManifest, manifest);

  for (const auto& [name, p] : named) {
    std::string payload;
    AppendString(&payload, name);
    AppendTensor(&payload, p->value);
    AppendRecord(&out, kTagTensor, payload);
  }

  if (state != nullptr && state->has_optimizer) {
    std::string payload;
    AppendString(&payload, state->optimizer.type);
    AppendI64(&payload, state->optimizer.step);
    AppendU64(&payload, state->optimizer.slots.size());
    for (const Tensor& slot : state->optimizer.slots) {
      AppendTensor(&payload, slot);
    }
    AppendRecord(&out, kTagOptimizer, payload);
  }
  if (state != nullptr && state->has_rng) {
    std::string payload;
    for (uint64_t s : state->rng.s) AppendU64(&payload, s);
    AppendU8(&payload, state->rng.has_gauss ? 1 : 0);
    AppendF64(&payload, state->rng.cached_gauss);
    AppendRecord(&out, kTagRng, payload);
  }
  if (state != nullptr && state->has_trainer) {
    std::string payload;
    AppendI64(&payload, state->epoch);
    AppendI64(&payload, state->day_cursor);
    AppendU64(&payload, state->day_order.size());
    for (int64_t day : state->day_order) AppendI64(&payload, day);
    AppendRecord(&out, kTagTrainer, payload);
  }

  AppendRecord(&out, kTagEnd, "");
  return out;
}

// ---------------------------------------------------------------------------
// v2 loader
// ---------------------------------------------------------------------------

Status ParsePayloadManifest(Cursor in, const std::string& path,
                            std::vector<std::pair<std::string, Shape>>* out) {
  uint64_t count = 0;
  if (!in.ReadU64(&count)) return Status::IoError("truncated ", path);
  // Each entry needs at least a name length and a rank (16 bytes).
  if (count > in.remaining() / 16 + 1) {
    return Status::InvalidArgument("implausible manifest count ", count,
                                   " in ", path);
  }
  out->clear();
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    if (!in.ReadString(&name)) return Status::IoError("truncated ", path);
    Shape shape;
    RTGCN_RETURN_NOT_OK(ReadShape(&in, &shape, path));
    out->emplace_back(std::move(name), std::move(shape));
  }
  if (in.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes in manifest of ", path);
  }
  return Status::OK();
}

Status ParsePayloadTensor(Cursor in, const std::string& path,
                          std::pair<std::string, Tensor>* out) {
  if (!in.ReadString(&out->first)) return Status::IoError("truncated ", path);
  RTGCN_RETURN_NOT_OK(ReadTensor(&in, &out->second, path));
  if (in.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes in tensor record of ",
                                   path);
  }
  return Status::OK();
}

Status ParsePayloadOptimizer(Cursor in, const std::string& path,
                             ag::OptimizerState* out) {
  if (!in.ReadString(&out->type)) return Status::IoError("truncated ", path);
  if (!in.ReadI64(&out->step)) return Status::IoError("truncated ", path);
  uint64_t num_slots = 0;
  if (!in.ReadU64(&num_slots)) return Status::IoError("truncated ", path);
  if (num_slots > in.remaining() / 8 + 1) {
    return Status::InvalidArgument("implausible optimizer slot count ",
                                   num_slots, " in ", path);
  }
  out->slots.clear();
  for (uint64_t i = 0; i < num_slots; ++i) {
    Tensor slot;
    RTGCN_RETURN_NOT_OK(ReadTensor(&in, &slot, path));
    out->slots.push_back(std::move(slot));
  }
  if (in.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes in optimizer record of ",
                                   path);
  }
  return Status::OK();
}

Status ParsePayloadRng(Cursor in, const std::string& path, Rng::State* out) {
  for (uint64_t& s : out->s) {
    if (!in.ReadU64(&s)) return Status::IoError("truncated ", path);
  }
  uint8_t has_gauss = 0;
  if (!in.ReadU8(&has_gauss) || has_gauss > 1) {
    return Status::InvalidArgument("bad RNG record in ", path);
  }
  out->has_gauss = has_gauss != 0;
  if (!in.ReadF64(&out->cached_gauss)) {
    return Status::IoError("truncated ", path);
  }
  if (in.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes in RNG record of ", path);
  }
  return Status::OK();
}

Status ParsePayloadTrainer(Cursor in, const std::string& path,
                           TrainingState* out) {
  if (!in.ReadI64(&out->epoch) || !in.ReadI64(&out->day_cursor)) {
    return Status::IoError("truncated ", path);
  }
  if (out->epoch < 0 || out->day_cursor < 0) {
    return Status::InvalidArgument("negative trainer cursor in ", path);
  }
  uint64_t num_days = 0;
  if (!in.ReadU64(&num_days)) return Status::IoError("truncated ", path);
  if (num_days * 8 != in.remaining()) {
    return Status::InvalidArgument("bad trainer record size in ", path);
  }
  out->day_order.clear();
  out->day_order.reserve(num_days);
  for (uint64_t i = 0; i < num_days; ++i) {
    int64_t day = 0;
    if (!in.ReadI64(&day)) return Status::IoError("truncated ", path);
    out->day_order.push_back(day);
  }
  return Status::OK();
}

Status LoadV2(Cursor in, const std::string& path, Module* module,
              TrainingState* state) {
  // Stage 1: walk the record stream, CRC-check every record, and stage all
  // content. Nothing of the module or `state` is touched until everything
  // has validated.
  std::vector<std::pair<std::string, Shape>> manifest;
  bool have_manifest = false;
  std::vector<std::pair<std::string, Tensor>> tensors;
  TrainingState staged;
  bool ended = false;

  while (!ended) {
    uint32_t tag = 0;
    uint64_t size = 0;
    if (!in.ReadU32(&tag) || !in.ReadU64(&size)) {
      return Status::IoError("truncated record header in ", path);
    }
    // Written to avoid overflow for a corrupt size near UINT64_MAX.
    if (size > in.remaining() ||
        in.remaining() - size < sizeof(uint32_t)) {
      return Status::IoError("truncated record in ", path);
    }
    Cursor payload(nullptr, 0);
    in.Slice(size, &payload);
    const uint32_t expected_crc = Crc32(payload.data(), size);
    uint32_t stored_crc = 0;
    in.ReadU32(&stored_crc);
    if (stored_crc != expected_crc) {
      return Status::IoError("CRC mismatch in record of ", path);
    }
    switch (tag) {
      case kTagManifest:
        if (have_manifest) {
          return Status::InvalidArgument("duplicate manifest in ", path);
        }
        RTGCN_RETURN_NOT_OK(ParsePayloadManifest(payload, path, &manifest));
        have_manifest = true;
        break;
      case kTagTensor: {
        std::pair<std::string, Tensor> entry;
        RTGCN_RETURN_NOT_OK(ParsePayloadTensor(payload, path, &entry));
        tensors.push_back(std::move(entry));
        break;
      }
      case kTagOptimizer:
        if (staged.has_optimizer) {
          return Status::InvalidArgument("duplicate optimizer record in ",
                                         path);
        }
        RTGCN_RETURN_NOT_OK(
            ParsePayloadOptimizer(payload, path, &staged.optimizer));
        staged.has_optimizer = true;
        break;
      case kTagRng:
        if (staged.has_rng) {
          return Status::InvalidArgument("duplicate RNG record in ", path);
        }
        RTGCN_RETURN_NOT_OK(ParsePayloadRng(payload, path, &staged.rng));
        staged.has_rng = true;
        break;
      case kTagTrainer:
        if (staged.has_trainer) {
          return Status::InvalidArgument("duplicate trainer record in ", path);
        }
        RTGCN_RETURN_NOT_OK(ParsePayloadTrainer(payload, path, &staged));
        staged.has_trainer = true;
        break;
      case kTagEnd:
        if (payload.remaining() != 0) {
          return Status::InvalidArgument("non-empty end record in ", path);
        }
        ended = true;
        break;
      default:
        return Status::InvalidArgument("unknown record tag in ", path);
    }
  }
  if (in.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes after end record in ",
                                   path);
  }
  if (!have_manifest) {
    return Status::InvalidArgument("missing manifest in ", path);
  }

  // Stage 2: validate against the module.
  const auto named = module->NamedParameters();
  if (manifest.size() != named.size()) {
    return Status::InvalidArgument("checkpoint has ", manifest.size(),
                                   " parameters, module has ", named.size());
  }
  if (tensors.size() != manifest.size()) {
    return Status::InvalidArgument("checkpoint has ", tensors.size(),
                                   " tensor records for a manifest of ",
                                   manifest.size());
  }
  for (size_t i = 0; i < named.size(); ++i) {
    const auto& [man_name, man_shape] = manifest[i];
    if (man_name != named[i].first) {
      return Status::InvalidArgument("parameter ", i, " name mismatch: '",
                                     man_name, "' vs module '",
                                     named[i].first, "'");
    }
    if (man_shape != named[i].second->value.shape()) {
      return Status::InvalidArgument(
          "parameter '", man_name, "' shape mismatch: checkpoint ",
          ShapeToString(man_shape), " vs module ",
          ShapeToString(named[i].second->value.shape()));
    }
    const auto& [ten_name, ten_value] = tensors[i];
    if (ten_name != man_name || ten_value.shape() != man_shape) {
      return Status::InvalidArgument("tensor record ", i,
                                     " disagrees with manifest in ", path);
    }
  }

  // Stage 3: commit.
  for (size_t i = 0; i < named.size(); ++i) {
    named[i].second->value = tensors[i].second;
  }
  if (state != nullptr) *state = std::move(staged);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// v1 (legacy) format
// ---------------------------------------------------------------------------

Status LoadV1(Cursor in, const std::string& path, Module* module) {
  const auto params = module->Parameters();
  uint64_t count = 0;
  if (!in.ReadU64(&count)) return Status::IoError("truncated ", path);
  if (count != params.size()) {
    return Status::InvalidArgument("checkpoint has ", count,
                                   " parameters, module has ", params.size());
  }
  // Stage every tensor before touching the module, so a count/shape error
  // or truncation partway through cannot leave it half-loaded.
  std::vector<Tensor> staged;
  staged.reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    Shape shape;
    RTGCN_RETURN_NOT_OK(ReadShape(&in, &shape, path));
    if (shape != params[i]->value.shape()) {
      return Status::InvalidArgument(
          "parameter ", i, " shape mismatch: checkpoint ",
          ShapeToString(shape), " vs module ",
          ShapeToString(params[i]->value.shape()));
    }
    Tensor value(shape);
    if (!in.ReadRaw(value.data(),
                    static_cast<size_t>(value.numel()) * sizeof(float))) {
      return Status::IoError("truncated tensor data in ", path);
    }
    staged.push_back(std::move(value));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    params[i]->value = staged[i];
  }
  return Status::OK();
}

}  // namespace

Status SaveCheckpoint(const Module& module, const std::string& path,
                      const TrainingState* state) {
  return WriteFileAtomic(path, EncodeCheckpoint(module, state));
}

Status LoadCheckpoint(Module* module, const std::string& path,
                      TrainingState* state) {
  std::string content;
  {
    auto read = ReadWholeFile(path);
    if (!read.ok()) return read.status();
    content = read.MoveValueOrDie();
  }
  Cursor in(content.data(), content.size());
  uint32_t header[2];
  if (!in.ReadRaw(header, sizeof(header)) || header[0] != kMagic) {
    return Status::InvalidArgument(path, " is not an RT-GCN checkpoint");
  }
  if (header[1] == kVersionLegacy) return LoadV1(in, path, module);
  if (header[1] != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version ",
                                   header[1]);
  }
  return LoadV2(in, path, module, state);
}

Status SaveParameters(const Module& module, const std::string& path) {
  return SaveCheckpoint(module, path, nullptr);
}

Status LoadParameters(Module* module, const std::string& path) {
  return LoadCheckpoint(module, path, nullptr);
}

Status SaveParametersV1(const Module& module, const std::string& path) {
  const auto params = module.Parameters();
  std::string out;
  uint32_t header[2] = {kMagic, kVersionLegacy};
  AppendRaw(&out, header, sizeof(header));
  AppendU64(&out, params.size());
  for (const auto& p : params) {
    AppendTensor(&out, p->value);
  }
  return WriteFileAtomic(path, out);
}

}  // namespace rtgcn::nn
