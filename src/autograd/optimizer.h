// First-order optimizers over lists of leaf Variables.
#ifndef RTGCN_AUTOGRAD_OPTIMIZER_H_
#define RTGCN_AUTOGRAD_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"

namespace rtgcn::ag {

/// \brief Base optimizer interface.
class Optimizer {
 public:
  explicit Optimizer(std::vector<VarPtr> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently stored on the params.
  virtual void Step() = 0;

  /// Clears gradients on all parameters.
  void ZeroGrad() {
    for (auto& p : params_) p->ZeroGrad();
  }

  /// Rescales gradients so the global L2 norm is at most `max_norm`.
  void ClipGradNorm(float max_norm);

  const std::vector<VarPtr>& params() const { return params_; }

 protected:
  std::vector<VarPtr> params_;
};

/// \brief Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<VarPtr> params, float lr, float momentum = 0.0f);
  void Step() override;

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// \brief Adam (Kingma & Ba). The paper trains RT-GCN with Adam, lr = 1e-3.
class Adam : public Optimizer {
 public:
  Adam(std::vector<VarPtr> params, float lr = 1e-3f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void Step() override;

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace rtgcn::ag

#endif  // RTGCN_AUTOGRAD_OPTIMIZER_H_
