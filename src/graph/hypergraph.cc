#include "graph/hypergraph.h"

#include <cmath>

#include "common/logging.h"
#include "tensor/ops.h"

namespace rtgcn::graph {

void Hypergraph::AddHyperedge(const std::vector<int64_t>& members) {
  if (members.size() < 2) return;
  for (int64_t m : members) {
    RTGCN_CHECK(m >= 0 && m < num_nodes_) << "hyperedge member " << m;
  }
  edges_.push_back(members);
}

Tensor Hypergraph::Incidence() const {
  const int64_t e = num_hyperedges();
  Tensor h = Tensor::Zeros({num_nodes_, std::max<int64_t>(e, 1)});
  float* p = h.data();
  const int64_t cols = h.dim(1);
  for (int64_t j = 0; j < e; ++j) {
    for (int64_t i : edges_[j]) p[i * cols + j] = 1.0f;
  }
  return h;
}

Tensor Hypergraph::PropagationMatrix() const {
  const int64_t n = num_nodes_;
  const int64_t e = num_hyperedges();
  Tensor p = Tensor::Zeros({n, n});
  float* pp = p.data();

  // Node degrees (number of incident hyperedges).
  std::vector<double> node_deg(n, 0.0);
  for (const auto& edge : edges_) {
    for (int64_t i : edge) node_deg[i] += 1.0;
  }

  // P = Σ_edges (1/|e|) * d_i^{-1/2} d_j^{-1/2} over member pairs (i, j),
  // including i == j, which is the expanded form of Dv^-1/2 H De^-1 H^T Dv^-1/2.
  for (int64_t k = 0; k < e; ++k) {
    const auto& edge = edges_[k];
    const double inv_size = 1.0 / static_cast<double>(edge.size());
    for (int64_t i : edge) {
      const double di = 1.0 / std::sqrt(node_deg[i]);
      for (int64_t j : edge) {
        const double dj = 1.0 / std::sqrt(node_deg[j]);
        pp[i * n + j] += static_cast<float>(inv_size * di * dj);
      }
    }
  }
  // Isolated nodes: identity pass-through.
  for (int64_t i = 0; i < n; ++i) {
    if (node_deg[i] == 0.0) pp[i * n + i] = 1.0f;
  }
  return p;
}

}  // namespace rtgcn::graph
