#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace rtgcn::nn {

namespace {

constexpr uint32_t kMagic = 0x52544743;  // "RTGC"
constexpr uint32_t kVersion = 1;

void WriteU64(std::ofstream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU64(std::ifstream& in, uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

}  // namespace

Status SaveParameters(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot create ", path);
  const auto params = module.Parameters();
  uint32_t header[2] = {kMagic, kVersion};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  WriteU64(out, params.size());
  for (const auto& p : params) {
    WriteU64(out, p->value.ndim());
    for (int64_t d : p->value.shape()) {
      WriteU64(out, static_cast<uint64_t>(d));
    }
    out.write(reinterpret_cast<const char*>(p->value.data()),
              p->value.numel() * sizeof(float));
  }
  if (!out) return Status::IoError("write failure on ", path);
  return Status::OK();
}

Status LoadParameters(Module* module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open ", path);
  uint32_t header[2];
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (!in || header[0] != kMagic) {
    return Status::InvalidArgument(path, " is not an RT-GCN checkpoint");
  }
  if (header[1] != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version ",
                                   header[1]);
  }
  const auto params = module->Parameters();
  uint64_t count = 0;
  if (!ReadU64(in, &count)) return Status::IoError("truncated ", path);
  if (count != params.size()) {
    return Status::InvalidArgument("checkpoint has ", count,
                                   " parameters, module has ", params.size());
  }
  for (size_t i = 0; i < params.size(); ++i) {
    uint64_t rank = 0;
    if (!ReadU64(in, &rank)) return Status::IoError("truncated ", path);
    Shape shape(rank);
    for (uint64_t d = 0; d < rank; ++d) {
      uint64_t dim = 0;
      if (!ReadU64(in, &dim)) return Status::IoError("truncated ", path);
      shape[d] = static_cast<int64_t>(dim);
    }
    if (shape != params[i]->value.shape()) {
      return Status::InvalidArgument(
          "parameter ", i, " shape mismatch: checkpoint ",
          ShapeToString(shape), " vs module ",
          ShapeToString(params[i]->value.shape()));
    }
    Tensor value(shape);
    in.read(reinterpret_cast<char*>(value.data()),
            value.numel() * sizeof(float));
    if (!in) return Status::IoError("truncated tensor data in ", path);
    params[i]->value = value;
  }
  return Status::OK();
}

}  // namespace rtgcn::nn
