#include "serve/server.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "obs/clock.h"
#include "obs/trace.h"

namespace rtgcn::serve {

namespace {

// (version, day) cache key. Checkpoint epochs are capped at 2^40 by the
// checkpoint name parser and a day index is bounded by the price panel
// (decades of trading days << 2^20), so the packing is collision-free.
uint64_t CacheKey(int64_t version, int64_t day) {
  return (static_cast<uint64_t>(version) << 20) |
         static_cast<uint64_t>(day);
}

constexpr auto kNoDeadline = std::chrono::steady_clock::time_point::max();

}  // namespace

InferenceServer::InferenceServer(const market::WindowDataset* data,
                                 ModelRegistry* registry, Options options,
                                 Metrics* metrics)
    : data_(data),
      registry_(registry),
      options_(options),
      metrics_(metrics),
      admission_({std::max<int64_t>(options.max_queue, 1), options.admission,
                  options.admission_timeout_ms, "requests"}) {
  RTGCN_CHECK(data_ != nullptr);
  RTGCN_CHECK(registry_ != nullptr);
  options_.max_batch = std::max<int64_t>(options_.max_batch, 1);
  options_.batch_timeout_us = std::max<int64_t>(options_.batch_timeout_us, 0);
  options_.cache_capacity = std::max<int64_t>(options_.cache_capacity, 1);
  options_.max_queue = std::max<int64_t>(options_.max_queue, 1);
}

InferenceServer::~InferenceServer() { Stop(); }

Status InferenceServer::Start() {
  std::lock_guard<std::mutex> lock(queue_mu_);
  if (running_) return Status::OK();
  running_ = true;
  draining_ = false;
  admission_.Reopen();
  batcher_ = std::thread([this] { BatchLoop(); });
  return Status::OK();
}

void InferenceServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!running_) return;
    draining_ = true;
  }
  // Fail waiters at the admission gate (and all later arrivals) with a
  // "draining" status, then let the batcher flush what was already
  // admitted: a drain completes queued work instead of orphaning it.
  admission_.CloseForDrain();
  queue_cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    running_ = false;
  }
}

Result<InferenceServer::Scored> InferenceServer::Submit(
    int64_t day, const RequestOptions& request) {
  if (metrics_) metrics_->requests.fetch_add(1, std::memory_order_relaxed);
  const auto now = std::chrono::steady_clock::now();
  const auto deadline =
      request.deadline_ms > 0
          ? now + std::chrono::milliseconds(request.deadline_ms)
          : kNoDeadline;
  // Admission first: a full queue answers in bounded time (reject-fast or
  // block-with-timeout) instead of growing without limit.
  const Status admitted = admission_.Admit(deadline);
  if (!admitted.ok()) {
    if (metrics_) {
      (admitted.code() == StatusCode::kDeadlineExceeded ? metrics_->expired
                                                        : metrics_->shed)
          .fetch_add(1, std::memory_order_relaxed);
    }
    return admitted;
  }
  std::future<Result<Scored>> future;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!running_ || draining_) {
      admission_.Release();
      if (metrics_) metrics_->shed.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(running_ ? "draining: server is stopping"
                                          : "draining: server is not running");
    }
    Pending pending;
    pending.day = day;
    pending.enqueue = now;
    pending.deadline = deadline;
    pending.enqueue_us = obs::NowMicros();
    future = pending.promise.get_future();
    queue_.push_back(std::move(pending));
  }
  queue_cv_.notify_one();
  return future.get();
}

Result<InferenceServer::RankReply> InferenceServer::Rank(
    int64_t day, RequestOptions request) {
  obs::Span span("serve.rank", "serve");
  auto scored = Submit(day, request);
  if (!scored.ok()) return scored.status();
  const Scored& s = scored.ValueOrDie();
  RankReply reply;
  reply.model_version = s.version;
  reply.day = day;
  reply.scores = s.day->scores;
  reply.stale = s.stale;
  return reply;
}

Result<InferenceServer::ScoreReply> InferenceServer::Score(
    int64_t day, int64_t stock, RequestOptions request) {
  obs::Span span("serve.score", "serve");
  if (stock < 0 || stock >= data_->num_stocks()) {
    if (metrics_) {
      metrics_->requests.fetch_add(1, std::memory_order_relaxed);
      metrics_->responses_error.fetch_add(1, std::memory_order_relaxed);
    }
    return Status::InvalidArgument("stock ", stock, " out of range [0, ",
                                   data_->num_stocks(), ")");
  }
  auto scored = Submit(day, request);
  if (!scored.ok()) return scored.status();
  const Scored& s = scored.ValueOrDie();
  ScoreReply reply;
  reply.model_version = s.version;
  reply.score = s.day->scores[static_cast<size_t>(stock)];
  reply.rank = s.day->ranks[static_cast<size_t>(stock)];
  reply.num_stocks = data_->num_stocks();
  reply.stale = s.stale;
  return reply;
}

bool InferenceServer::TryRankCached(int64_t day, RankReply* out) {
  if (!options_.enable_cache) return false;
  const std::shared_ptr<const ModelSnapshot> snapshot = registry_->Current();
  if (!snapshot) return false;
  // Only the healthy path may skip the queue: degraded (stale flags,
  // fallbacks) and draining (DRAINING replies) must see the full
  // Submit()-side accounting.
  if (Health() != HealthState::kServing) return false;
  std::shared_ptr<const DayScores> entry;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_.find(CacheKey(snapshot->version(), day));
    if (it == cache_.end()) return false;
    entry = it->second;
  }
  if (metrics_) metrics_->cache_hits.fetch_add(1, std::memory_order_relaxed);
  out->model_version = snapshot->version();
  out->day = day;
  out->scores = entry->scores;
  out->stale = false;
  return true;
}

bool InferenceServer::TryScoreCached(int64_t day, int64_t stock,
                                     ScoreReply* out) {
  if (!options_.enable_cache) return false;
  if (stock < 0 || stock >= data_->num_stocks()) return false;
  const std::shared_ptr<const ModelSnapshot> snapshot = registry_->Current();
  if (!snapshot) return false;
  if (Health() != HealthState::kServing) return false;
  std::shared_ptr<const DayScores> entry;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_.find(CacheKey(snapshot->version(), day));
    if (it == cache_.end()) return false;
    entry = it->second;
  }
  if (metrics_) metrics_->cache_hits.fetch_add(1, std::memory_order_relaxed);
  out->model_version = snapshot->version();
  out->score = entry->scores[static_cast<size_t>(stock)];
  out->rank = entry->ranks[static_cast<size_t>(stock)];
  out->num_stocks = data_->num_stocks();
  out->stale = false;
  return true;
}

int64_t InferenceServer::CurrentVersion() const {
  return registry_->CurrentVersion();
}

HealthState InferenceServer::HealthLocked(bool draining) {
  HealthState state;
  if (draining) {
    state = HealthState::kDraining;
  } else if (registry_->Current() == nullptr) {
    state = HealthState::kDegraded;
  } else if (options_.degraded_failure_threshold > 0 &&
             registry_->consecutive_reload_failures() >=
                 options_.degraded_failure_threshold) {
    state = HealthState::kDegraded;
  } else {
    state = HealthState::kServing;
  }
  // Degraded-seconds accounting: attribute the time since the previous
  // evaluation to the state it was spent in.
  std::lock_guard<std::mutex> lock(health_mu_);
  const uint64_t now_us = obs::NowMicros();
  if (last_health_us_ != 0 && was_degraded_) {
    degraded_secs_ +=
        static_cast<double>(obs::ElapsedMicrosSince(last_health_us_)) * 1e-6;
  }
  last_health_us_ = now_us;
  was_degraded_ = (state == HealthState::kDegraded);
  if (metrics_) metrics_->degraded_seconds.Set(degraded_secs_);
  return state;
}

HealthState InferenceServer::Health() {
  bool draining;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    draining = !running_ || draining_;
  }
  return HealthLocked(draining);
}

std::string InferenceServer::HealthLine() {
  size_t depth;
  bool draining;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    draining = !running_ || draining_;
    depth = queue_.size();
  }
  const HealthState state = HealthLocked(draining);
  std::ostringstream out;
  out << HealthStateName(state) << " version=" << registry_->CurrentVersion()
      << " reload_failures=" << registry_->consecutive_reload_failures()
      << " queue=" << depth;
  return out.str();
}

void InferenceServer::BatchLoop() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  while (true) {
    queue_cv_.wait(lock, [this] { return draining_ || !queue_.empty(); });
    if (draining_ && queue_.empty()) break;
    // Micro-batch window: flush at max_batch requests or batch_timeout_us
    // after the batch's first request — but wake no later than the
    // earliest request deadline, so an expiring request is shed promptly
    // instead of after the full window. A drain flushes immediately.
    if (options_.batch_timeout_us > 0 && !draining_ &&
        static_cast<int64_t>(queue_.size()) < options_.max_batch) {
      auto wake = queue_.front().enqueue +
                  std::chrono::microseconds(options_.batch_timeout_us);
      for (const Pending& p : queue_) wake = std::min(wake, p.deadline);
      queue_cv_.wait_until(lock, wake, [this] {
        return draining_ ||
               static_cast<int64_t>(queue_.size()) >= options_.max_batch;
      });
    }
    // Shed everything whose deadline passed while queued, then take the
    // batch from what remains.
    std::vector<Pending> dead;
    std::vector<Pending> batch;
    {
      obs::Span assemble("serve.assemble", "serve");
      const auto now = std::chrono::steady_clock::now();
      for (auto it = queue_.begin(); it != queue_.end();) {
        if (it->deadline <= now) {
          dead.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      const int64_t take = std::min<int64_t>(
          options_.max_batch, static_cast<int64_t>(queue_.size()));
      batch.reserve(static_cast<size_t>(take));
      for (int64_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    lock.unlock();
    for (Pending& p : dead) {
      admission_.Release();
      if (metrics_) metrics_->expired.fetch_add(1, std::memory_order_relaxed);
      p.promise.set_value(Status::DeadlineExceeded(
          "deadline exceeded after ", obs::ElapsedMicrosSince(p.enqueue_us),
          "us in queue"));
    }
    for (size_t i = 0; i < batch.size(); ++i) admission_.Release();
    if (!batch.empty()) ExecuteBatch(std::move(batch));
    lock.lock();
  }
}

Result<std::shared_ptr<const InferenceServer::DayScores>>
InferenceServer::ScoresFor(const ModelSnapshot& snapshot, int64_t day) {
  if (day < data_->first_day() || day > data_->last_day()) {
    return Status::InvalidArgument("day ", day, " outside the valid range [",
                                   data_->first_day(), ", ",
                                   data_->last_day(), "]");
  }
  const uint64_t key = CacheKey(snapshot.version(), day);
  if (options_.enable_cache) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      if (metrics_) {
        metrics_->cache_hits.fetch_add(1, std::memory_order_relaxed);
      }
      return it->second;
    }
  }
  if (metrics_) {
    metrics_->cache_misses.fetch_add(1, std::memory_order_relaxed);
    metrics_->forwards.fetch_add(1, std::memory_order_relaxed);
  }
  obs::Span span("serve.forward", "serve");
  const Tensor scores = snapshot.Score(data_->Features(day));
  const int64_t n = scores.numel();
  auto entry = std::make_shared<DayScores>();
  entry->scores.assign(scores.data(), scores.data() + n);
  // Dense ranks, best score first; ties broken by stock id so the ranking
  // is deterministic.
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return entry->scores[static_cast<size_t>(a)] >
           entry->scores[static_cast<size_t>(b)];
  });
  entry->ranks.assign(static_cast<size_t>(n), 0);
  for (int64_t r = 0; r < n; ++r) {
    entry->ranks[static_cast<size_t>(order[static_cast<size_t>(r)])] = r;
  }
  if (options_.enable_cache) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (cache_.emplace(key, entry).second) {
      cache_fifo_.push_back(key);
      while (static_cast<int64_t>(cache_fifo_.size()) >
             options_.cache_capacity) {
        cache_.erase(cache_fifo_.front());
        cache_fifo_.pop_front();
      }
    }
  }
  return std::shared_ptr<const DayScores>(std::move(entry));
}

InferenceServer::Scored InferenceServer::LastScoresFor(int64_t day) {
  std::lock_guard<std::mutex> lock(stale_mu_);
  auto it = last_by_day_.find(day);
  if (it == last_by_day_.end()) return Scored{};
  Scored stale = it->second;
  stale.stale = true;
  return stale;
}

void InferenceServer::RememberScores(
    int64_t day, int64_t version, std::shared_ptr<const DayScores> entry) {
  std::lock_guard<std::mutex> lock(stale_mu_);
  auto [it, inserted] = last_by_day_.try_emplace(day);
  it->second = Scored{version, std::move(entry), false};
  if (inserted) {
    stale_fifo_.push_back(day);
    while (static_cast<int64_t>(stale_fifo_.size()) >
           options_.cache_capacity) {
      last_by_day_.erase(stale_fifo_.front());
      stale_fifo_.pop_front();
    }
  }
}

void InferenceServer::ExecuteBatch(std::vector<Pending> batch) {
  obs::Span span("serve.batch", "serve");
  if (metrics_) {
    metrics_->batches.fetch_add(1, std::memory_order_relaxed);
    metrics_->batch_size.Record(static_cast<int64_t>(batch.size()));
  }
  // Pin exactly one published snapshot for the whole batch: every response
  // it produces maps to this version.
  const std::shared_ptr<const ModelSnapshot> snapshot = registry_->Current();
  const bool degraded = (Health() == HealthState::kDegraded);
  // Days scored within this batch (coalesces same-day requests even when
  // the cross-batch cache is disabled).
  std::unordered_map<int64_t, Result<std::shared_ptr<const DayScores>>>
      by_day;
  for (Pending& p : batch) {
    Result<Scored> result = Status::Internal("unset");
    if (!snapshot) {
      // Graceful degradation: with no published model, fall back to the
      // last scores ever computed for this day (flagged stale) instead of
      // erroring; only a day never scored before fails.
      Scored stale = LastScoresFor(p.day);
      if (stale.day) {
        result = std::move(stale);
      } else {
        result = Status::NotFound("no model version published yet");
      }
    } else {
      auto it = by_day.find(p.day);
      if (it == by_day.end()) {
        it = by_day.emplace(p.day, ScoresFor(*snapshot, p.day)).first;
      }
      if (it->second.ok()) {
        result = Scored{snapshot->version(), it->second.ValueOrDie(),
                        degraded};
        RememberScores(p.day, snapshot->version(), it->second.ValueOrDie());
      } else {
        result = it->second.status();
      }
    }
    const bool ok = result.ok();
    if (metrics_) {
      // Clamped single-clock-source elapsed time: can never go negative or
      // wrap, even if the clock is skewed (obs/clock.h).
      metrics_->latency.Record(obs::ElapsedMicrosSince(p.enqueue_us));
      (ok ? metrics_->responses_ok : metrics_->responses_error)
          .fetch_add(1, std::memory_order_relaxed);
      if (ok && result.ValueOrDie().stale) {
        metrics_->stale_served.fetch_add(1, std::memory_order_relaxed);
      }
    }
    obs::Span reply("serve.reply", "serve");
    p.promise.set_value(std::move(result));
  }
}

}  // namespace rtgcn::serve
