# Empty dependencies file for rtgcn_core.
# This may be replaced when dependencies are built.
