// Google-benchmark micro-benchmarks for the numeric substrate and the model
// layers: op throughput, layer forward/backward, and the per-sample cost
// that underlies Figure 5's speed comparison.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "autograd/optimizer.h"
#include "baselines/lstm_models.h"
#include "common/thread_pool.h"
#include "core/loss.h"
#include "core/rtgcn.h"
#include "graph/adjacency.h"
#include "market/market.h"
#include "nn/rnn.h"
#include "obs/trace.h"
#include "tensor/init.h"
#include "tensor/kernels/kernels.h"
#include "tensor/ops.h"

namespace rtgcn {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  SetNumThreads(static_cast<int>(state.range(1)));
  Rng rng(1);
  Tensor a = RandomGaussian({n, n}, 0, 1, &rng);
  Tensor b = RandomGaussian({n, n}, 0, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  SetNumThreads(0);
}
BENCHMARK(BM_MatMul)
    ->ArgNames({"n", "threads"})
    ->Args({64, 1})
    ->Args({128, 1})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({512, 1})
    ->Args({512, 4});

// Same matmul, but with the kernel backend forced per run — the direct
// reference-vs-avx2 comparison that BENCH_kernels.json records.
void BM_MatMulKernel(benchmark::State& state) {
  const int64_t n = state.range(0);
  const auto backend = static_cast<kernels::Backend>(state.range(1));
  if (backend == kernels::Backend::kAvx2 && !kernels::CpuSupportsAvx2()) {
    state.SkipWithError("AVX2+FMA not supported on this CPU/build");
    return;
  }
  const kernels::Backend prev = kernels::ActiveBackend();
  kernels::SetBackend(backend);
  SetNumThreads(1);
  Rng rng(1);
  Tensor a = RandomGaussian({n, n}, 0, 1, &rng);
  Tensor b = RandomGaussian({n, n}, 0, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  state.SetLabel(kernels::Active().name);
  SetNumThreads(0);
  kernels::SetBackend(prev);
}
BENCHMARK(BM_MatMulKernel)
    ->ArgNames({"n", "backend"})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({512, 0})
    ->Args({512, 1});

void BM_BroadcastAdd(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = RandomGaussian({n, n}, 0, 1, &rng);
  Tensor b = RandomGaussian({n}, 0, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Add(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_BroadcastAdd)->Arg(256);

void BM_Softmax(benchmark::State& state) {
  Rng rng(1);
  Tensor a = RandomGaussian({128, 128}, 0, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Softmax(a, 1));
  }
}
BENCHMARK(BM_Softmax);

// One RT-GCN forward+backward per day-sample vs an LSTM ranker — the
// per-sample contrast behind Figure 5.
struct ModelFixture {
  ModelFixture() : data(market::BuildMarket(SmallSpec())) {
    dataset = std::make_unique<market::WindowDataset>(data.sim.prices, 15, 4);
    features = dataset->Features(dataset->first_day());
    labels = dataset->Labels(dataset->first_day());
  }

  static market::MarketSpec SmallSpec() {
    market::MarketSpec spec = market::NasdaqSpec();
    spec.train_days = 60;
    spec.test_days = 10;
    return spec;
  }

  market::MarketData data;
  std::unique_ptr<market::WindowDataset> dataset;
  Tensor features;
  Tensor labels;
};

ModelFixture& Fixture() {
  static ModelFixture fixture;
  return fixture;
}

void BM_RtGcnForward(benchmark::State& state) {
  auto& f = Fixture();
  Rng rng(2);
  core::RtGcnConfig cfg;
  cfg.strategy = static_cast<core::Strategy>(state.range(0));
  cfg.relational_filters = 32;
  core::RtGcnModel model(f.data.relations.relations, cfg, &rng);
  model.SetTraining(false);
  ag::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Forward(ag::Constant(f.features), &rng));
  }
}
BENCHMARK(BM_RtGcnForward)->Arg(0)->Arg(1)->Arg(2)
    ->ArgNames({"strategy"});

void BM_RtGcnTrainStep(benchmark::State& state) {
  SetNumThreads(static_cast<int>(state.range(0)));
  auto& f = Fixture();
  Rng rng(2);
  core::RtGcnConfig cfg;
  cfg.strategy = core::Strategy::kTimeSensitive;
  cfg.relational_filters = 32;
  core::RtGcnModel model(f.data.relations.relations, cfg, &rng);
  ag::Adam opt(model.Parameters(), 1e-3f);
  for (auto _ : state) {
    opt.ZeroGrad();
    auto scores = model.Forward(ag::Constant(f.features), &rng);
    auto loss = core::CombinedLoss(scores, f.labels, 0.1f);
    ag::Backward(loss);
    opt.Step();
  }
  SetNumThreads(0);
}
BENCHMARK(BM_RtGcnTrainStep)->ArgNames({"threads"})->Arg(1)->Arg(2)->Arg(4);

void BM_LstmRankerTrainStep(benchmark::State& state) {
  auto& f = Fixture();
  Rng rng(3);
  struct Net : nn::Module {
    Net(Rng* rng) : lstm(4, 32, rng), scorer(32, 1, rng) {
      RegisterModule(&lstm);
      RegisterModule(&scorer);
    }
    nn::Lstm lstm;
    nn::Linear scorer;
  } net(&rng);
  ag::Adam opt(net.Parameters(), 1e-3f);
  const int64_t n = f.features.dim(1);
  for (auto _ : state) {
    opt.ZeroGrad();
    auto h = net.lstm.ForwardLast(ag::Constant(f.features));
    auto scores = ag::Reshape(net.scorer.Forward(h), {n});
    auto loss = core::CombinedLoss(scores, f.labels, 0.1f);
    ag::Backward(loss);
    opt.Step();
  }
}
BENCHMARK(BM_LstmRankerTrainStep);

void BM_NormalizedAdjacency(benchmark::State& state) {
  auto& f = Fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::NormalizedAdjacency(f.data.relations.relations));
  }
}
BENCHMARK(BM_NormalizedAdjacency);

void BM_MarketSimulation(benchmark::State& state) {
  market::MarketSpec spec = market::NasdaqSpec();
  for (auto _ : state) {
    benchmark::DoNotOptimize(market::BuildMarket(spec));
  }
}
BENCHMARK(BM_MarketSimulation);

void BM_FeatureWindow(benchmark::State& state) {
  auto& f = Fixture();
  const int64_t day = f.dataset->first_day();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.dataset->Features(day));
  }
}
BENCHMARK(BM_FeatureWindow);

}  // namespace
}  // namespace rtgcn

// Custom main instead of BENCHMARK_MAIN(): supports `--trace_out FILE`
// (enables span tracing for the whole run and exports a Chrome trace JSON
// when the benchmarks finish) and `--kernel reference|avx2|auto` (forces
// the tensor kernel backend for the run, like the RTGCN_KERNEL env var).
// Both flags are stripped before google-benchmark sees argv — it rejects
// unknown flags.
int main(int argc, char** argv) {
  std::string trace_out;
  std::string kernel;
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace_out=", 0) == 0) {
      trace_out = arg.substr(sizeof("--trace_out=") - 1);
      continue;
    }
    if (arg == "--trace_out" && i + 1 < argc) {
      trace_out = argv[++i];
      continue;
    }
    if (arg.rfind("--kernel=", 0) == 0) {
      kernel = arg.substr(sizeof("--kernel=") - 1);
      continue;
    }
    if (arg == "--kernel" && i + 1 < argc) {
      kernel = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  if (!kernel.empty()) {
    const rtgcn::Status status = rtgcn::kernels::SetBackendByName(kernel);
    if (!status.ok()) {
      std::fprintf(stderr, "bench_micro: %s\n", status.message().c_str());
      return 1;
    }
  }
  if (!trace_out.empty()) rtgcn::obs::Tracer::SetEnabled(true);
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!trace_out.empty()) {
    std::string error;
    if (!rtgcn::obs::Tracer::ExportChromeJson(trace_out, &error)) {
      std::fprintf(stderr, "bench_micro: trace export failed: %s\n",
                   error.c_str());
      return 1;
    }
    std::fprintf(stderr, "bench_micro: trace written to %s\n",
                 trace_out.c_str());
  }
  return 0;
}
