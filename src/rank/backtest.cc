#include "rank/backtest.h"

#include "common/logging.h"
#include "common/thread_pool.h"

namespace rtgcn::rank {

Backtester::Backtester(std::vector<int64_t> top_ks)
    : top_ks_(std::move(top_ks)) {
  for (int64_t k : top_ks_) {
    irr_sum_[k] = 0;
    curves_[k] = {};
  }
}

void Backtester::AddDay(const Tensor& scores, const Tensor& labels) {
  mrr_sum_ += ReciprocalRankTop1(scores, labels);
  for (int64_t k : top_ks_) {
    irr_sum_[k] += TopKReturn(scores, labels, k);
    curves_[k].push_back(irr_sum_[k]);
  }
  ++days_;
}

void Backtester::AddDays(const std::vector<Tensor>& scores,
                         const std::vector<Tensor>& labels) {
  RTGCN_CHECK_EQ(scores.size(), labels.size());
  const int64_t n = static_cast<int64_t>(scores.size());
  const int64_t num_ks = static_cast<int64_t>(top_ks_.size());
  // Per-day metrics (a sort plus a scan each) are independent across days.
  std::vector<double> rr(n);
  std::vector<double> rets(n * num_ks);
  ParallelFor(0, n, 4, [&](int64_t lo, int64_t hi) {
    for (int64_t d = lo; d < hi; ++d) {
      rr[d] = ReciprocalRankTop1(scores[d], labels[d]);
      for (int64_t k = 0; k < num_ks; ++k) {
        rets[d * num_ks + k] = TopKReturn(scores[d], labels[d], top_ks_[k]);
      }
    }
  });
  for (int64_t d = 0; d < n; ++d) {
    mrr_sum_ += rr[d];
    for (int64_t k = 0; k < num_ks; ++k) {
      irr_sum_[top_ks_[k]] += rets[d * num_ks + k];
      curves_[top_ks_[k]].push_back(irr_sum_[top_ks_[k]]);
    }
    ++days_;
  }
}

BacktestResult Backtester::Finalize() const {
  RTGCN_CHECK_GT(days_, 0) << "no test days recorded";
  BacktestResult result;
  result.num_days = days_;
  result.mrr = mrr_sum_ / static_cast<double>(days_);
  result.irr = irr_sum_;
  result.irr_curve = curves_;
  return result;
}

std::vector<double> IndexReturnCurve(const std::vector<double>& index_levels,
                                     int64_t begin, int64_t end) {
  RTGCN_CHECK(begin >= 1 && end <= static_cast<int64_t>(index_levels.size()));
  std::vector<double> curve;
  double acc = 0;
  for (int64_t t = begin; t < end; ++t) {
    acc += index_levels[t] / index_levels[t - 1] - 1.0;
    curve.push_back(acc);
  }
  return curve;
}

}  // namespace rtgcn::rank
