#include "nn/attention.h"

#include <cmath>

#include "autograd/ops.h"

namespace rtgcn::nn {

ag::VarPtr ScaledDotProductScores(const VarPtr& x) {
  RTGCN_CHECK_EQ(x->value.ndim(), 2);
  const float scale = 1.0f / std::sqrt(static_cast<float>(x->value.dim(1)));
  return ag::MulScalar(ag::MatMul(x, ag::Transpose(x)), scale);
}

ag::VarPtr ScaledDotProductAttention(const VarPtr& q, const VarPtr& k,
                                     const VarPtr& v) {
  RTGCN_CHECK_EQ(q->value.dim(1), k->value.dim(1));
  const float scale = 1.0f / std::sqrt(static_cast<float>(q->value.dim(1)));
  VarPtr scores = ag::MulScalar(ag::MatMul(q, ag::Transpose(k)), scale);
  return ag::MatMul(ag::Softmax(scores, 1), v);
}

}  // namespace rtgcn::nn
