file(REMOVE_RECURSE
  "CMakeFiles/rtgcn_harness.dir/evaluator.cc.o"
  "CMakeFiles/rtgcn_harness.dir/evaluator.cc.o.d"
  "CMakeFiles/rtgcn_harness.dir/gradient_predictor.cc.o"
  "CMakeFiles/rtgcn_harness.dir/gradient_predictor.cc.o.d"
  "CMakeFiles/rtgcn_harness.dir/table.cc.o"
  "CMakeFiles/rtgcn_harness.dir/table.cc.o.d"
  "librtgcn_harness.a"
  "librtgcn_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtgcn_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
