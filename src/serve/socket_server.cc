#include "serve/socket_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "obs/trace.h"

namespace rtgcn::serve {

namespace {

// Transient accept() failures that must not kill the listener: fd
// exhaustion (ours or system-wide), a client aborting the handshake, or
// momentary kernel memory pressure. Everything else (EBADF/EINVAL after
// Stop() closed the listener) ends the loop.
bool AcceptErrnoIsTransient(int err) {
  return err == ECONNABORTED || err == EMFILE || err == ENFILE ||
         err == ENOBUFS || err == ENOMEM || err == EAGAIN ||
         err == EWOULDBLOCK || err == EPROTO;
}

}  // namespace

SocketServer::SocketServer(Backend* server, Metrics* metrics,
                           Options options)
    : server_(server),
      metrics_(metrics),
      options_(options),
      conn_gate_({std::max<int64_t>(options.max_connections, 1),
                  AdmissionPolicy::kRejectFast, 0, "connections"}) {
  RTGCN_CHECK(server_ != nullptr);
  options_.max_line_bytes = std::max<int64_t>(options_.max_line_bytes, 64);
}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start() {
  if (started_) return Status::OK();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError("socket: ", std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind port ", options_.port, ": ", err);
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen: ", err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  stopping_ = false;
  conn_gate_.Reopen();
  started_ = true;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  RTGCN_LOG(Info) << "serve: listening on 127.0.0.1:" << port_;
  return Status::OK();
}

void SocketServer::Stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    stopping_ = true;
  }
  // Closing the listener unblocks accept(); shutting connections down
  // unblocks their reads. listen_fd_ itself is only overwritten after the
  // acceptor has joined — AcceptLoop holds its own copy of the fd.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (acceptor_.joinable()) acceptor_.join();
  listen_fd_ = -1;
  // Wake every live connection; each thread closes its own fd (fd == -1
  // marks it already closed — never shut down a recycled descriptor).
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& [id, conn] : conns_) {
      if (conn.fd >= 0) ::shutdown(conn.fd, SHUT_RDWR);
    }
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.reserve(conns_.size());
    for (auto& [id, conn] : conns_) threads.push_back(std::move(conn.thread));
    conns_.clear();
    done_ids_.clear();
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  if (metrics_) metrics_->conns_active.Set(0);
  started_ = false;
}

void SocketServer::ReapFinishedConnections() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int64_t id : done_ids_) {
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      finished.push_back(std::move(it->second.thread));
      conns_.erase(it);
    }
    done_ids_.clear();
    if (metrics_) {
      metrics_->conns_active.Set(static_cast<double>(conns_.size()));
    }
  }
  for (std::thread& t : finished) {
    if (t.joinable()) t.join();
  }
}

void SocketServer::AcceptLoop() {
  // Copy once: Start() wrote listen_fd_ before spawning this thread, and
  // Stop() does not overwrite it until after joining it.
  const int listen_fd = listen_fd_;
  while (true) {
    // Reap connections that ended since the last accept, so fds and
    // threads are reclaimed continuously instead of pooling until Stop().
    ReapFinishedConnections();
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      {
        std::lock_guard<std::mutex> lock(conn_mu_);
        if (stopping_) return;
      }
      if (AcceptErrnoIsTransient(errno)) {
        RTGCN_LOG(Warning) << "serve: accept: " << std::strerror(errno)
                           << " — backing off and continuing";
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        continue;
      }
      return;  // listener closed by Stop()
    }
    if (options_.send_timeout_ms > 0) {
      timeval tv{};
      tv.tv_sec = static_cast<time_t>(options_.send_timeout_ms / 1000);
      tv.tv_usec =
          static_cast<suseconds_t>((options_.send_timeout_ms % 1000) * 1000);
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    if (!conn_gate_.Admit().ok()) {
      if (metrics_) {
        metrics_->busy_rejected.fetch_add(1, std::memory_order_relaxed);
      }
      SendAll(fd, "BUSY too many connections\n");  // best-effort
      ::close(fd);
      continue;
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_) {
      conn_gate_.Release();
      ::close(fd);
      return;
    }
    const int64_t id = next_conn_id_++;
    Conn& conn = conns_[id];
    conn.fd = fd;
    if (metrics_) {
      metrics_->conns_active.Set(static_cast<double>(conns_.size()));
    }
    conn.thread = std::thread([this, id, fd] { HandleConnection(id, fd); });
  }
}

bool SocketServer::SendAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a peer that closed its socket yields EPIPE here — a
    // per-connection error — instead of a process-wide SIGPIPE kill.
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      // EAGAIN/EWOULDBLOCK: SO_SNDTIMEO expired — a slow reader whose
      // socket buffer stayed full for the whole timeout. Drop it.
      if (metrics_) {
        metrics_->send_errors.fetch_add(1, std::memory_order_relaxed);
      }
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool SocketServer::WriteReply(int fd, const std::string& reply) {
  const std::string wire = reply + "\n";
  if (chaos_ != nullptr) {
    const ChaosInjector::ReplyPlan plan = chaos_->PlanReply(wire.size());
    switch (plan.fault) {
      case ChaosInjector::ReplyFault::kDelay:
        std::this_thread::sleep_for(std::chrono::milliseconds(plan.delay_ms));
        break;
      case ChaosInjector::ReplyFault::kDrop:
        return true;  // swallow the reply; the client's read times out
      case ChaosInjector::ReplyFault::kTruncate:
        SendAll(fd, std::string_view(wire).substr(0, plan.truncate_at));
        return false;  // drop the connection mid-line
      case ChaosInjector::ReplyFault::kReset: {
        // RST instead of FIN: the peer sees ECONNRESET mid-reply.
        linger lg{1, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
        return false;
      }
      case ChaosInjector::ReplyFault::kNone:
        break;
    }
  }
  return SendAll(fd, wire);
}

void SocketServer::HandleConnection(int64_t id, int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    buffer.append(chunk, static_cast<size_t>(n));
    size_t pos;
    while (open && (pos = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      const std::string reply = HandleLine(line);
      if (reply.empty()) {  // QUIT (either framing): close the connection
        open = false;
        break;
      }
      if (!WriteReply(fd, reply)) open = false;
    }
    // Bounded read buffer: a line that exceeds the cap without a
    // terminator would otherwise grow `buffer` without limit. Reject it
    // and drop the connection — the sender is not speaking the protocol.
    if (open &&
        static_cast<int64_t>(buffer.size()) > options_.max_line_bytes) {
      if (metrics_) {
        metrics_->oversized_lines.fetch_add(1, std::memory_order_relaxed);
      }
      SendAll(fd, "ERR line too long\n");
      open = false;
    }
  }
  FinishConnection(id, fd);
}

void SocketServer::FinishConnection(int64_t id, int fd) {
  {
    // fd close and the fd = -1 marker are atomic with respect to Stop()'s
    // shutdown pass, so a recycled descriptor can never be shut down.
    std::lock_guard<std::mutex> lock(conn_mu_);
    ::close(fd);
    auto it = conns_.find(id);
    if (it != conns_.end()) it->second.fd = -1;
    done_ids_.push_back(id);
  }
  conn_gate_.Release();
}

std::string SocketServer::HandleLine(const std::string& line) {
  return ExecuteLine(server_, metrics_, line);
}

}  // namespace rtgcn::serve
