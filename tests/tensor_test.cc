#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "kernel_checker.h"
#include "tensor/init.h"
#include "tensor/kernels/kernels.h"
#include "tensor/ops.h"

namespace rtgcn {
namespace {

TEST(TensorTest, DefaultIsUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_EQ(t.numel(), 0);
}

TEST(TensorTest, ZerosOnesFull) {
  Tensor z = Tensor::Zeros({2, 3});
  Tensor o = Tensor::Ones({2, 3});
  Tensor f = Tensor::Full({2, 3}, 2.5f);
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(z.data()[i], 0.0f);
    EXPECT_EQ(o.data()[i], 1.0f);
    EXPECT_EQ(f.data()[i], 2.5f);
  }
  EXPECT_EQ(z.ndim(), 2);
  EXPECT_EQ(z.numel(), 6);
}

TEST(TensorTest, ScalarItem) {
  Tensor s = Tensor::Scalar(3.0f);
  EXPECT_EQ(s.ndim(), 0);
  EXPECT_EQ(s.numel(), 1);
  EXPECT_FLOAT_EQ(s.item(), 3.0f);
}

TEST(TensorTest, EyeAndArange) {
  Tensor e = Tensor::Eye(3);
  EXPECT_FLOAT_EQ(e.at({0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(e.at({0, 1}), 0.0f);
  EXPECT_FLOAT_EQ(e.at({2, 2}), 1.0f);
  Tensor a = Tensor::Arange(4);
  EXPECT_FLOAT_EQ(a.at({3}), 3.0f);
}

TEST(TensorTest, AtIndexing) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(t.at({0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(t.at({0, 2}), 3.0f);
  EXPECT_FLOAT_EQ(t.at({1, 0}), 4.0f);
  t.at({1, 2}) = 9.0f;
  EXPECT_FLOAT_EQ(t.at({1, 2}), 9.0f);
}

TEST(TensorTest, CloneIsDeep) {
  Tensor t = Tensor::Ones({2, 2});
  Tensor c = t.Clone();
  c.data()[0] = 5.0f;
  EXPECT_FLOAT_EQ(t.data()[0], 1.0f);
}

TEST(TensorTest, CopyIsShallow) {
  Tensor t = Tensor::Ones({2, 2});
  Tensor c = t;  // NOLINT
  c.data()[0] = 5.0f;
  EXPECT_FLOAT_EQ(t.data()[0], 5.0f);
}

TEST(TensorTest, ReshapeSharesAndInfers) {
  Tensor t({2, 6}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  Tensor r = t.Reshape({3, -1});
  EXPECT_EQ(r.shape(), (Shape{3, 4}));
  EXPECT_FLOAT_EQ(r.at({2, 3}), 11.0f);
  r.data()[0] = 42.0f;
  EXPECT_FLOAT_EQ(t.data()[0], 42.0f);  // shared storage
}

TEST(TensorTest, ShapeHelpers) {
  EXPECT_EQ(ShapeNumel({2, 3, 4}), 24);
  EXPECT_EQ(ShapeNumel({}), 1);
  EXPECT_EQ(RowMajorStrides({2, 3, 4}), (std::vector<int64_t>{12, 4, 1}));
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
}

// ---------------------------------------------------------------------------
// Elementwise ops and broadcasting
// ---------------------------------------------------------------------------

TEST(OpsTest, AddSameShape) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {10, 20, 30, 40});
  Tensor c = Add(a, b);
  EXPECT_TRUE(AllClose(c, Tensor({2, 2}, {11, 22, 33, 44})));
}

TEST(OpsTest, SubMulDiv) {
  Tensor a({3}, {6, 8, 10});
  Tensor b({3}, {2, 4, 5});
  EXPECT_TRUE(AllClose(Sub(a, b), Tensor({3}, {4, 4, 5})));
  EXPECT_TRUE(AllClose(Mul(a, b), Tensor({3}, {12, 32, 50})));
  EXPECT_TRUE(AllClose(Div(a, b), Tensor({3}, {3, 2, 2})));
}

TEST(OpsTest, BroadcastRowAndColumn) {
  Tensor m({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor row({1, 3}, {10, 20, 30});
  Tensor col({2, 1}, {100, 200});
  EXPECT_TRUE(AllClose(Add(m, row), Tensor({2, 3}, {11, 22, 33, 14, 25, 36})));
  EXPECT_TRUE(
      AllClose(Add(m, col), Tensor({2, 3}, {101, 102, 103, 204, 205, 206})));
}

TEST(OpsTest, BroadcastTrailingVector) {
  // [2,3] + [3] aligns on the trailing axis.
  Tensor m({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor v({3}, {1, 1, 1});
  EXPECT_TRUE(AllClose(Add(m, v), Tensor({2, 3}, {2, 3, 4, 5, 6, 7})));
}

TEST(OpsTest, BroadcastScalarFastPath) {
  Tensor m({2, 2}, {1, 2, 3, 4});
  Tensor s = Tensor::Scalar(10.0f);
  EXPECT_TRUE(AllClose(Mul(m, s), Tensor({2, 2}, {10, 20, 30, 40})));
  EXPECT_TRUE(AllClose(Mul(s, m), Tensor({2, 2}, {10, 20, 30, 40})));
}

TEST(OpsTest, Broadcast3dWith2d) {
  // [2,2,2] * [2,2]: the matrix is applied per batch element.
  Tensor a({2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor b({2, 2}, {1, 0, 0, 1});
  Tensor c = Mul(a, b);
  EXPECT_TRUE(AllClose(c, Tensor({2, 2, 2}, {1, 0, 0, 4, 5, 0, 0, 8})));
}

TEST(OpsTest, BroadcastShapeComputation) {
  EXPECT_EQ(BroadcastShape({2, 1, 3}, {4, 1}), (Shape{2, 4, 3}));
  EXPECT_TRUE(BroadcastableTo({1, 3}, {5, 3}));
  EXPECT_FALSE(BroadcastableTo({2, 3}, {5, 3}));
}

TEST(OpsTest, ReduceToShapeSumsBroadcastAxes) {
  Tensor g = Tensor::Ones({4, 3});
  Tensor r = ReduceToShape(g, {3});
  EXPECT_TRUE(AllClose(r, Tensor({3}, {4, 4, 4})));
  Tensor r2 = ReduceToShape(g, {4, 1});
  EXPECT_TRUE(AllClose(r2, Tensor({4, 1}, {3, 3, 3, 3})));
}

TEST(OpsTest, UnaryFunctions) {
  Tensor a({4}, {-2, -0.5, 0.5, 2});
  EXPECT_TRUE(AllClose(Relu(a), Tensor({4}, {0, 0, 0.5, 2})));
  EXPECT_TRUE(AllClose(LeakyRelu(a, 0.1f), Tensor({4}, {-0.2f, -0.05f, 0.5f, 2})));
  EXPECT_TRUE(AllClose(Abs(a), Tensor({4}, {2, 0.5, 0.5, 2})));
  EXPECT_TRUE(AllClose(Neg(a), Tensor({4}, {2, 0.5, -0.5, -2})));
  EXPECT_TRUE(AllClose(Sign(a), Tensor({4}, {-1, -1, 1, 1})));
  EXPECT_TRUE(AllClose(Clamp(a, -1, 1), Tensor({4}, {-1, -0.5, 0.5, 1})));
}

TEST(OpsTest, ExpLogSqrtSquare) {
  Tensor a({2}, {1, 4});
  EXPECT_TRUE(AllClose(Sqrt(a), Tensor({2}, {1, 2})));
  EXPECT_TRUE(AllClose(Square(a), Tensor({2}, {1, 16})));
  EXPECT_TRUE(AllClose(Log(Exp(a)), a, 1e-5f, 1e-5f));
}

TEST(OpsTest, SigmoidTanhRange) {
  Tensor a({3}, {-10, 0, 10});
  Tensor s = Sigmoid(a);
  EXPECT_NEAR(s.data()[0], 0.0f, 1e-4);
  EXPECT_NEAR(s.data()[1], 0.5f, 1e-6);
  EXPECT_NEAR(s.data()[2], 1.0f, 1e-4);
  Tensor t = Tanh(a);
  EXPECT_NEAR(t.data()[0], -1.0f, 1e-4);
  EXPECT_NEAR(t.data()[1], 0.0f, 1e-6);
}

// ---------------------------------------------------------------------------
// Matmul / transpose / permute
// ---------------------------------------------------------------------------

TEST(OpsTest, MatMulBasic) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_TRUE(AllClose(c, Tensor({2, 2}, {58, 64, 139, 154})));
}

TEST(OpsTest, MatMulIdentity) {
  Rng rng(1);
  Tensor a = RandomGaussian({4, 4}, 0, 1, &rng);
  EXPECT_TRUE(AllClose(MatMul(a, Tensor::Eye(4)), a));
  EXPECT_TRUE(AllClose(MatMul(Tensor::Eye(4), a), a));
}

TEST(OpsTest, BatchMatMulPerBatchAndShared) {
  Tensor a({2, 1, 2}, {1, 2, 3, 4});
  Tensor b({2, 2, 1}, {1, 1, 2, 2});
  Tensor c = BatchMatMul(a, b);
  EXPECT_TRUE(AllClose(c, Tensor({2, 1, 1}, {3, 14})));
  Tensor shared({2, 1}, {1, 1});
  Tensor c2 = BatchMatMul(a, shared);
  EXPECT_TRUE(AllClose(c2, Tensor({2, 1, 1}, {3, 7})));
}

TEST(OpsTest, TransposeRoundTrip) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(t.at({0, 1}), 4.0f);
  EXPECT_TRUE(AllClose(Transpose(t), a));
}

// Regression for the tiled transpose kernels: the output is written
// column-strided (out[j*m + i]), so a tiling bug shows up exactly on
// non-square shapes where row and column strides differ. Pin every backend
// to the naive loop, bit-for-bit.
TEST(OpsTest, TransposeNonSquareMatchesNaivePerBackend) {
  Rng rng(17);
  for (const auto& mn :
       {std::vector<int64_t>{3, 11}, std::vector<int64_t>{11, 3},
        std::vector<int64_t>{9, 24}, std::vector<int64_t>{24, 9},
        std::vector<int64_t>{1, 13}, std::vector<int64_t>{13, 1},
        std::vector<int64_t>{40, 23}}) {
    const int64_t m = mn[0], n = mn[1];
    Tensor a = RandomGaussian({m, n}, 0, 1, &rng);
    Tensor naive({n, m});
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        naive.data()[j * m + i] = a.data()[i * n + j];
      }
    }
    for (const kernels::KernelSet* ks : kernels::AllKernels()) {
      if (!ks->supported()) continue;
      ScopedKernelBackend scope(ks == &kernels::Avx2()
                                    ? kernels::Backend::kAvx2
                                    : kernels::Backend::kReference);
      Tensor t = Transpose(a);
      ASSERT_EQ(t.shape(), (Shape{n, m})) << ks->name;
      EXPECT_EQ(std::memcmp(t.data(), naive.data(), sizeof(float) * t.numel()),
                0)
          << ks->name << " transpose [" << m << "," << n
          << "] differs from naive loop";
    }
  }
}

TEST(OpsTest, PermuteMatchesTransposeFor2d) {
  Rng rng(2);
  Tensor a = RandomGaussian({3, 5}, 0, 1, &rng);
  EXPECT_TRUE(AllClose(Permute(a, {1, 0}), Transpose(a)));
}

TEST(OpsTest, Permute3d) {
  Tensor a({2, 3, 4});
  for (int64_t i = 0; i < a.numel(); ++i) a.data()[i] = static_cast<float>(i);
  Tensor p = Permute(a, {2, 0, 1});
  EXPECT_EQ(p.shape(), (Shape{4, 2, 3}));
  EXPECT_FLOAT_EQ(p.at({1, 0, 2}), a.at({0, 2, 1}));
  EXPECT_FLOAT_EQ(p.at({3, 1, 0}), a.at({1, 0, 3}));
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

TEST(OpsTest, SumMeanAxis) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(AllClose(Sum(a, 0), Tensor({3}, {5, 7, 9})));
  EXPECT_TRUE(AllClose(Sum(a, 1), Tensor({2}, {6, 15})));
  EXPECT_TRUE(AllClose(Sum(a, -1), Tensor({2}, {6, 15})));
  EXPECT_TRUE(AllClose(Mean(a, 1), Tensor({2}, {2, 5})));
  EXPECT_EQ(Sum(a, 0, true).shape(), (Shape{1, 3}));
}

TEST(OpsTest, SumAllMeanAllMaxMin) {
  Tensor a({2, 2}, {1, -2, 3, 4});
  EXPECT_FLOAT_EQ(SumAll(a).item(), 6.0f);
  EXPECT_FLOAT_EQ(MeanAll(a).item(), 1.5f);
  EXPECT_FLOAT_EQ(MaxAll(a), 4.0f);
  EXPECT_FLOAT_EQ(MinAll(a), -2.0f);
}

TEST(OpsTest, MaxAxisAndArgmax) {
  Tensor a({2, 3}, {1, 5, 3, 9, 2, 6});
  EXPECT_TRUE(AllClose(Max(a, 1), Tensor({2}, {5, 9})));
  EXPECT_TRUE(AllClose(Argmax(a, 1), Tensor({2}, {1, 0})));
  EXPECT_TRUE(AllClose(Max(a, 0), Tensor({3}, {9, 5, 6})));
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Tensor a({2, 3}, {1, 2, 3, 1000, 1000, 1000});  // second row: stability
  Tensor s = Softmax(a, 1);
  for (int64_t r = 0; r < 2; ++r) {
    float total = 0;
    for (int64_t c = 0; c < 3; ++c) total += s.at({r, c});
    EXPECT_NEAR(total, 1.0f, 1e-5);
  }
  EXPECT_NEAR(s.at({1, 0}), 1.0f / 3.0f, 1e-5);
  EXPECT_GT(s.at({0, 2}), s.at({0, 1}));
}

// ---------------------------------------------------------------------------
// Shape surgery
// ---------------------------------------------------------------------------

TEST(OpsTest, SliceMiddleAxis) {
  Tensor a({2, 4, 2});
  for (int64_t i = 0; i < a.numel(); ++i) a.data()[i] = static_cast<float>(i);
  Tensor s = Slice(a, 1, 1, 3);
  EXPECT_EQ(s.shape(), (Shape{2, 2, 2}));
  EXPECT_FLOAT_EQ(s.at({0, 0, 0}), a.at({0, 1, 0}));
  EXPECT_FLOAT_EQ(s.at({1, 1, 1}), a.at({1, 2, 1}));
}

TEST(OpsTest, ConcatRoundTripsSlice) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor left = Slice(a, 1, 0, 1);
  Tensor right = Slice(a, 1, 1, 3);
  EXPECT_TRUE(AllClose(Concat({left, right}, 1), a));
}

TEST(OpsTest, StackAndSqueeze) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {3, 4});
  Tensor s = Stack({a, b});
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(s.at({1, 0}), 3.0f);
  Tensor u = Unsqueeze(a, 0);
  EXPECT_EQ(u.shape(), (Shape{1, 2}));
  EXPECT_EQ(Squeeze(u, 0).shape(), (Shape{2}));
}

TEST(OpsTest, NormAndDot) {
  Tensor a({2}, {3, 4});
  EXPECT_FLOAT_EQ(Norm(a), 5.0f);
  Tensor b({2}, {1, 2});
  EXPECT_FLOAT_EQ(Dot(a, b), 11.0f);
}

// ---------------------------------------------------------------------------
// Random init
// ---------------------------------------------------------------------------

TEST(InitTest, UniformRange) {
  Rng rng(3);
  Tensor t = RandomUniform({1000}, -2.0f, 3.0f, &rng);
  EXPECT_GE(MinAll(t), -2.0f);
  EXPECT_LT(MaxAll(t), 3.0f);
  EXPECT_NEAR(MeanAll(t).item(), 0.5f, 0.15f);
}

TEST(InitTest, GaussianMoments) {
  Rng rng(4);
  Tensor t = RandomGaussian({5000}, 1.0f, 2.0f, &rng);
  EXPECT_NEAR(MeanAll(t).item(), 1.0f, 0.15f);
  Tensor centered = AddScalar(t, -MeanAll(t).item());
  EXPECT_NEAR(std::sqrt(MeanAll(Square(centered)).item()), 2.0f, 0.2f);
}

TEST(InitTest, XavierBound) {
  Rng rng(5);
  Tensor t = XavierUniform({64, 64}, 64, 64, &rng);
  const float bound = std::sqrt(6.0f / 128.0f);
  EXPECT_LE(MaxAll(t), bound);
  EXPECT_GE(MinAll(t), -bound);
}

TEST(InitTest, DeterministicGivenSeed) {
  Rng rng1(9), rng2(9);
  Tensor a = RandomGaussian({16}, 0, 1, &rng1);
  Tensor b = RandomGaussian({16}, 0, 1, &rng2);
  EXPECT_TRUE(AllClose(a, b, 0, 0));
}

}  // namespace
}  // namespace rtgcn
