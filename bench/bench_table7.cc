// Reproduces Table VII: module ablation — R-Conv (relational convolution
// only) and T-Conv (temporal convolution only) against the full RT-GCN (U).
//
// Flags: --markets NASDAQ,NYSE,CSI  --reps 2  --epochs 8  --scale 1.0
#include <cstdio>

#include "bench_common.h"

namespace rtgcn::bench {
namespace {

int Run(int argc, char** argv) {
  auto flags = ParseBenchFlags(argc, argv);
  const int64_t reps = flags.GetInt("reps", 1);
  const int64_t epochs = flags.GetInt("epochs", 8);

  for (const market::MarketSpec& spec : MarketsFromFlags(flags)) {
    market::MarketData data = market::BuildMarket(spec);
    std::printf("=== Table VII — %s: module ablation ===\n",
                spec.name.c_str());
    harness::TablePrinter table({"Model", "MRR", "IRR-1", "IRR-5", "IRR-10"});
    for (const std::string& model : {"RT-GCN (U)", "R-Conv", "T-Conv"}) {
      baselines::ExperimentConfig config;
      config.model = model;
      config.train.epochs = epochs;
      baselines::RepeatedMetrics m = baselines::RunRepeated(data, config, reps);
      table.AddRow({model, Fmt3(m.MeanMrr()), Fmt2(m.MeanIrr(1)),
                    Fmt2(m.MeanIrr(5)), Fmt2(m.MeanIrr(10))});
      std::printf("  done: %s\n", model.c_str());
      std::fflush(stdout);
    }
    table.Print();
    std::printf(
        "\nExpected shape (paper Table VII): R-Conv worst, T-Conv in the "
        "middle (stock prediction leans on temporal features), full "
        "RT-GCN (U) best.\n\n");
  }
  return 0;
}

}  // namespace
}  // namespace rtgcn::bench

int main(int argc, char** argv) { return rtgcn::bench::Run(argc, argv); }
