#include <gtest/gtest.h>

#include <sstream>

#include "autograd/ops.h"
#include "harness/evaluator.h"
#include "harness/gradient_predictor.h"
#include "harness/table.h"
#include "market/dataset.h"
#include "nn/linear.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace rtgcn::harness {
namespace {

TEST(TablePrinterTest, AlignsColumnsAndSeparators) {
  TablePrinter table({"Model", "Score"});
  table.AddRow({"tiny", "1.0"});
  table.AddSeparator();
  table.AddRow({"a-much-longer-name", "2.25"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  // Header present, separator lines drawn, both rows rendered.
  EXPECT_NE(text.find("Model"), std::string::npos);
  EXPECT_NE(text.find("a-much-longer-name"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  // Column alignment: every line has the same '|' position.
  std::istringstream lines(text);
  std::string line;
  size_t bar = std::string::npos;
  while (std::getline(lines, line)) {
    if (line.find('|') == std::string::npos) continue;
    if (bar == std::string::npos) bar = line.find('|');
    EXPECT_EQ(line.find('|'), bar);
  }
}

TEST(TablePrinterTest, ShortRowsTolerated) {
  TablePrinter table({"A", "B", "C"});
  table.AddRow({"only-one"});
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find("only-one"), std::string::npos);
}

// A trivial gradient predictor: linear model on the last day's features.
// Lets us test the shared Fit/Predict loop in isolation from real models.
class ToyPredictor : public GradientPredictor {
 public:
  explicit ToyPredictor(int64_t num_features)
      : rng_(1), linear_(num_features, 1, &rng_) {}

  std::string name() const override { return "Toy"; }

 protected:
  nn::Module* module() override { return &linear_; }
  ag::VarPtr Forward(const Tensor& features, Rng*) override {
    const int64_t t_len = features.dim(0);
    const int64_t n = features.dim(1);
    const int64_t d = features.dim(2);
    auto x = ag::Constant(features);
    auto last = ag::Reshape(ag::SliceOp(x, 0, t_len - 1, t_len), {n, d});
    return ag::Reshape(linear_.Forward(last), {n});
  }
  float alpha() const override { return 0.0f; }

 private:
  Rng rng_;
  nn::Linear linear_;
};

// Deterministic panel where the label is a linear function of the last
// day's features — learnable by ToyPredictor.
market::WindowDataset LinearPanel() {
  Rng rng(5);
  const int64_t days = 120, n = 12;
  Tensor prices({days, n});
  for (int64_t i = 0; i < n; ++i) prices.at({0, i}) = 100.0f;
  for (int64_t t = 1; t < days; ++t) {
    for (int64_t i = 0; i < n; ++i) {
      // Alternating momentum per stock: even stocks trend up, odd decay,
      // so next-day returns correlate with the visible history.
      const float drift = (i % 2 == 0) ? 0.01f : -0.01f;
      const float noise = static_cast<float>(rng.Gaussian(0, 0.0005));
      prices.at({t, i}) = prices.at({t - 1, i}) * (1.0f + drift + noise);
    }
  }
  return market::WindowDataset(prices, 5, 2);
}

TEST(GradientPredictorTest, FitImprovesScoresOnLearnableTask) {
  market::WindowDataset data = LinearPanel();
  market::DatasetSplit split = SplitByDay(data, 90);
  ToyPredictor trained(2);
  ToyPredictor untrained(2);
  TrainOptions opts;
  opts.epochs = 60;
  opts.learning_rate = 1e-2f;
  trained.Fit(data, split.train_days, opts);
  EXPECT_GT(trained.fit_stats().train_seconds, 0.0);
  EXPECT_EQ(trained.fit_stats().epochs, 60);

  // Fit must reduce out-of-sample prediction error vs the untrained twin.
  auto mse = [&](StockPredictor* model) {
    double acc = 0;
    for (int64_t day : split.test_days) {
      Tensor scores = model->Predict(data, day);
      Tensor labels = data.Labels(day);
      acc += MeanAll(Square(Sub(scores, labels))).item();
    }
    return acc / static_cast<double>(split.test_days.size());
  };
  EXPECT_LT(mse(&trained), 0.5 * mse(&untrained));
}

TEST(GradientPredictorTest, PredictRunsInEvalModeWithoutGradients) {
  market::WindowDataset data = LinearPanel();
  market::DatasetSplit split = SplitByDay(data, 90);
  ToyPredictor model(2);
  TrainOptions opts;
  opts.epochs = 1;
  model.Fit(data, split.train_days, opts);
  Tensor s1 = model.Predict(data, split.test_days.front());
  Tensor s2 = model.Predict(data, split.test_days.front());
  EXPECT_TRUE(AllClose(s1, s2, 0, 0));  // no dropout noise in eval
}

TEST(EvaluatorTest, PerfectOracleGetsMrrOne) {
  market::WindowDataset data = LinearPanel();
  market::DatasetSplit split = SplitByDay(data, 90);

  // An oracle predictor that returns the labels themselves.
  class Oracle : public StockPredictor {
   public:
    std::string name() const override { return "Oracle"; }
    void Fit(const market::WindowDataset&, const std::vector<int64_t>&,
             const TrainOptions&) override {}
    Tensor Predict(const market::WindowDataset& data, int64_t day) override {
      return data.Labels(day);
    }
  } oracle;

  Rng rng(1);
  EvalResult r = Evaluate(&oracle, data, split.test_days, &rng);
  EXPECT_DOUBLE_EQ(r.backtest.mrr, 1.0);
  // Top-1 IRR of the oracle upper-bounds top-5.
  EXPECT_GE(r.backtest.irr.at(1), r.backtest.irr.at(5));
  EXPECT_GE(r.backtest.irr.at(5), r.backtest.irr.at(10));
}

TEST(EvaluatorTest, AntiOracleGetsWorstIrr) {
  market::WindowDataset data = LinearPanel();
  market::DatasetSplit split = SplitByDay(data, 90);
  class AntiOracle : public StockPredictor {
   public:
    std::string name() const override { return "AntiOracle"; }
    void Fit(const market::WindowDataset&, const std::vector<int64_t>&,
             const TrainOptions&) override {}
    Tensor Predict(const market::WindowDataset& data, int64_t day) override {
      return Neg(data.Labels(day));
    }
  } anti;
  Rng rng(1);
  EvalResult r = Evaluate(&anti, data, split.test_days, &rng);
  // Picking realized losers: IRR-1 strictly worse than the market mean.
  EXPECT_LT(r.backtest.irr.at(1), r.backtest.irr.at(10));
}

TEST(FitStatsTest, SecondsPerEpoch) {
  FitStats stats;
  stats.train_seconds = 6.0;
  stats.epochs = 3;
  EXPECT_DOUBLE_EQ(stats.seconds_per_epoch(), 2.0);
  FitStats empty;
  EXPECT_DOUBLE_EQ(empty.seconds_per_epoch(), 0.0);
}

TEST(FitTelemetryTest, PopulatedByGradientFit) {
  market::WindowDataset data = LinearPanel();
  market::DatasetSplit split = SplitByDay(data, 90);
  ToyPredictor model(2);
  TrainOptions opts;
  opts.epochs = 5;
  model.Fit(data, split.train_days, opts);

  const FitTelemetry& t = model.fit_stats().telemetry;
  ASSERT_EQ(t.epoch_seconds.size(), 5u);
  double epoch_sum = 0;
  for (double s : t.epoch_seconds) {
    EXPECT_GE(s, 0.0);
    epoch_sum += s;
  }
  // Per-epoch times partition the epoch loop, so they can't exceed the
  // whole Fit by more than scheduling noise.
  EXPECT_LE(epoch_sum, model.fit_stats().train_seconds + 0.25);

  const uint64_t steps = 5u * split.train_days.size();
  EXPECT_EQ(t.metrics.CounterValue("train.epochs"), 5u);
  EXPECT_EQ(t.metrics.CounterValue("train.steps"), steps);
  const obs::HistogramSnapshot* h = t.metrics.FindHistogram("train.step_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, steps);
  EXPECT_GE(t.StepP95Millis(), 0.0);
}

TEST(FitTelemetryTest, DeltaIsolatesBackToBackFits) {
  market::WindowDataset data = LinearPanel();
  market::DatasetSplit split = SplitByDay(data, 90);
  TrainOptions opts;
  opts.epochs = 2;
  ToyPredictor first(2);
  first.Fit(data, split.train_days, opts);
  opts.epochs = 3;
  ToyPredictor second(2);
  second.Fit(data, split.train_days, opts);
  // The registry is process-global and cumulative; each Fit's telemetry
  // must still report only its own contribution.
  EXPECT_EQ(first.fit_stats().telemetry.metrics.CounterValue("train.epochs"),
            2u);
  EXPECT_EQ(second.fit_stats().telemetry.metrics.CounterValue("train.epochs"),
            3u);
}

TEST(FitTraceCoverageTest, EpochSpansCoverFitWall) {
  market::WindowDataset data = LinearPanel();
  market::DatasetSplit split = SplitByDay(data, 90);
  obs::Tracer::SetEnabled(true);
  obs::Tracer::Clear();
  ToyPredictor model(2);
  TrainOptions opts;
  opts.epochs = 5;
  model.Fit(data, split.train_days, opts);
  obs::Tracer::SetEnabled(false);

  std::ostringstream os;
  obs::Tracer::WriteChromeJson(os);
  obs::Tracer::Clear();
  std::vector<obs::TraceEventRecord> events;
  std::string error;
  ASSERT_TRUE(obs::ParseChromeTraceJson(os.str(), &events, &error)) << error;

  double epoch_us = 0;
  double step_us = 0;
  for (const auto& e : events) {
    if (e.ph != "X") continue;
    if (e.name == "fit.epoch") epoch_us += e.dur;
    if (e.name == "fit.step") step_us += e.dur;
  }
  const double wall_us = model.fit_stats().train_seconds * 1e6;
  ASSERT_GT(wall_us, 0.0);
  // The acceptance target is >=90% coverage of Fit wall time by fit.epoch
  // spans; assert a relaxed 75% so CI machines under load don't flake.
  EXPECT_GE(epoch_us, 0.75 * wall_us);
  EXPECT_GT(step_us, 0.0);
  EXPECT_LE(step_us, epoch_us * 1.01);  // steps nest inside epochs
}

}  // namespace
}  // namespace rtgcn::harness
