#include "serve/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <sstream>

namespace rtgcn::serve {

namespace {

// Bucket index for a microsecond sample: 0 for 0 µs, else 1 + floor(log2),
// clamped to the last bucket.
int BucketIndex(uint64_t micros) {
  if (micros == 0) return 0;
  const int idx = std::bit_width(micros);  // 1 + floor(log2(micros))
  return std::min(idx, LatencyHistogram::kNumBuckets - 1);
}

}  // namespace

void LatencyHistogram::Record(uint64_t micros) {
  buckets_[BucketIndex(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(micros, std::memory_order_relaxed);
}

double LatencyHistogram::MeanMicros() const {
  const uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0;
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) /
         static_cast<double>(n);
}

double LatencyHistogram::PercentileMicros(double p) const {
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  if (total == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(total);
  double cumulative = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    if (counts[b] == 0) continue;
    const double next = cumulative + static_cast<double>(counts[b]);
    if (next >= target) {
      // Linear interpolation inside [lo, hi) of the winning bucket.
      const double lo = b == 0 ? 0 : static_cast<double>(uint64_t{1} << (b - 1));
      const double hi = b == 0 ? 1 : static_cast<double>(uint64_t{1} << b);
      const double frac =
          (target - cumulative) / static_cast<double>(counts[b]);
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return static_cast<double>(uint64_t{1} << (kNumBuckets - 1));
}

void BatchSizeHistogram::Record(int64_t batch_size) {
  if (batch_size < 0) return;
  if (batch_size <= kMaxTracked) {
    buckets_[batch_size].fetch_add(1, std::memory_order_relaxed);
  } else {
    overflow_.fetch_add(1, std::memory_order_relaxed);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(static_cast<uint64_t>(batch_size),
                 std::memory_order_relaxed);
}

double BatchSizeHistogram::MeanSize() const {
  const uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0;
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) /
         static_cast<double>(n);
}

uint64_t BatchSizeHistogram::CountForSize(int64_t batch_size) const {
  if (batch_size < 0 || batch_size > kMaxTracked) return 0;
  return buckets_[batch_size].load(std::memory_order_relaxed);
}

double Metrics::UptimeSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

double Metrics::Qps() const {
  const double uptime = UptimeSeconds();
  if (uptime <= 0) return 0;
  const uint64_t done = responses_ok.load(std::memory_order_relaxed) +
                        responses_error.load(std::memory_order_relaxed);
  return static_cast<double>(done) / uptime;
}

double Metrics::CacheHitRate() const {
  const uint64_t hits = cache_hits.load(std::memory_order_relaxed);
  const uint64_t misses = cache_misses.load(std::memory_order_relaxed);
  if (hits + misses == 0) return 0;
  return static_cast<double>(hits) / static_cast<double>(hits + misses);
}

std::string Metrics::DumpText() const {
  std::ostringstream out;
  auto line = [&out](const char* name, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    out << name << ' ' << buf << '\n';
  };
  auto count = [&out](const char* name, uint64_t value) {
    out << name << ' ' << value << '\n';
  };
  count("serve.requests", requests.load(std::memory_order_relaxed));
  count("serve.responses_ok", responses_ok.load(std::memory_order_relaxed));
  count("serve.responses_error",
        responses_error.load(std::memory_order_relaxed));
  count("serve.batches", batches.load(std::memory_order_relaxed));
  count("serve.forwards", forwards.load(std::memory_order_relaxed));
  count("serve.cache_hits", cache_hits.load(std::memory_order_relaxed));
  count("serve.cache_misses", cache_misses.load(std::memory_order_relaxed));
  line("serve.cache_hit_rate", CacheHitRate());
  count("serve.reload_success", reload_success.load(std::memory_order_relaxed));
  count("serve.reload_failure", reload_failure.load(std::memory_order_relaxed));
  line("serve.uptime_seconds", UptimeSeconds());
  line("serve.qps", Qps());
  line("serve.latency_us.mean", latency.MeanMicros());
  line("serve.latency_us.p50", latency.PercentileMicros(0.50));
  line("serve.latency_us.p95", latency.PercentileMicros(0.95));
  line("serve.latency_us.p99", latency.PercentileMicros(0.99));
  line("serve.batch_size.mean", batch_size.MeanSize());
  out << "serve.batch_size.hist";
  for (int64_t s = 1; s <= BatchSizeHistogram::kMaxTracked; ++s) {
    const uint64_t c = batch_size.CountForSize(s);
    if (c > 0) out << ' ' << s << ':' << c;
  }
  if (batch_size.overflow() > 0) out << " >:" << batch_size.overflow();
  out << '\n';
  return out.str();
}

}  // namespace rtgcn::serve
