#include "serve/protocol.h"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <sstream>
#include <string_view>

#include "common/strings.h"
#include "obs/clock.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace rtgcn::serve {

namespace {

// Request parsing runs on every wire line, so it works in string_views
// over the input and from_chars — no per-token heap traffic.
bool ParseInt(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && p == s.data() + s.size();
}

bool ParseUint(std::string_view s, uint64_t* out) {
  if (s.empty() || s[0] == '-') return false;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && p == s.data() + s.size();
}

// Parses an optional trailing "DEADLINE <ms>" (ms > 0) starting at
// parts[at]; true when absent or well-formed.
bool ParseDeadline(const std::vector<std::string_view>& parts, size_t at,
                   int64_t* deadline_ms) {
  *deadline_ms = 0;
  if (parts.size() == at) return true;
  if (parts.size() != at + 2 || parts[at] != "DEADLINE") return false;
  return ParseInt(parts[at + 1], deadline_ms) && *deadline_ms > 0;
}

std::vector<std::string_view> Tokenize(const std::string& line) {
  std::vector<std::string_view> parts;
  const std::string_view sv = line;
  size_t i = 0;
  while (i < sv.size()) {
    while (i < sv.size() && sv[i] == ' ') ++i;
    const size_t tok = i;
    while (i < sv.size() && sv[i] != ' ') ++i;
    if (i > tok) parts.push_back(sv.substr(tok, i - tok));
  }
  return parts;
}

// Parses the verb + operands at parts[at..] into `request`. The error
// message on a malformed line is the exact legacy usage text (v2 forms
// reuse the same verbs, so usage strings name the verb only).
Status ParseVerb(const std::vector<std::string_view>& parts, size_t at,
                 Request* request) {
  if (parts.size() <= at) return Status::InvalidArgument("empty command");
  const std::string_view cmd = parts[at];
  if (cmd == "PING") {
    request->verb = Request::Verb::kPing;
    return Status::OK();
  }
  if (cmd == "HEALTH") {
    request->verb = Request::Verb::kHealth;
    return Status::OK();
  }
  if (cmd == "STATS") {
    request->verb = Request::Verb::kStats;
    return Status::OK();
  }
  if (cmd == "QUIT") {
    request->verb = Request::Verb::kQuit;
    return Status::OK();
  }
  if (cmd == "SCORE") {
    request->verb = Request::Verb::kScore;
    if (parts.size() < at + 3 || !ParseInt(parts[at + 1], &request->day) ||
        !ParseInt(parts[at + 2], &request->stock) ||
        !ParseDeadline(parts, at + 3, &request->deadline_ms)) {
      return Status::InvalidArgument(
          "usage: SCORE <day> <stock> [DEADLINE <ms>]");
    }
    return Status::OK();
  }
  if (cmd == "RANK") {
    request->verb = Request::Verb::kRank;
    if (parts.size() < at + 3 || !ParseInt(parts[at + 1], &request->day) ||
        !ParseInt(parts[at + 2], &request->k) ||
        !ParseDeadline(parts, at + 3, &request->deadline_ms)) {
      return Status::InvalidArgument("usage: RANK <day> <k> [DEADLINE <ms>]");
    }
    return Status::OK();
  }
  if (cmd == "SCOREN") {
    request->verb = Request::Verb::kScoreBatch;
    int64_t n = 0;
    if (parts.size() < at + 3 || !ParseInt(parts[at + 1], &request->day) ||
        !ParseInt(parts[at + 2], &n) || n < 1 ||
        parts.size() < at + 3 + static_cast<size_t>(n)) {
      return Status::InvalidArgument(
          "usage: SCOREN <day> <n> <stock>... [DEADLINE <ms>]");
    }
    request->stocks.resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      if (!ParseInt(parts[at + 3 + static_cast<size_t>(i)],
                    &request->stocks[static_cast<size_t>(i)])) {
        return Status::InvalidArgument(
            "usage: SCOREN <day> <n> <stock>... [DEADLINE <ms>]");
      }
    }
    if (!ParseDeadline(parts, at + 3 + static_cast<size_t>(n),
                       &request->deadline_ms)) {
      return Status::InvalidArgument(
          "usage: SCOREN <day> <n> <stock>... [DEADLINE <ms>]");
    }
    return Status::OK();
  }
  if (cmd == "PROTO") {
    request->verb = Request::Verb::kProto;
    request->proto_version = 0;
    if (parts.size() == at + 1) return Status::OK();
    int64_t v = 0;
    if (parts.size() != at + 2 || !ParseInt(parts[at + 1], &v)) {
      return Status::InvalidArgument("usage: PROTO [<version>]");
    }
    request->proto_version = static_cast<int>(v);
    return Status::OK();
  }
  return Status::InvalidArgument("unknown command: ", cmd);
}

// Overload-safety wire mapping: shed/draining/deadline outcomes get their
// own first tokens so clients can branch without parsing prose.
Reply ErrorReplyFor(const Request& request, const Status& status) {
  Reply reply;
  reply.proto = request.proto;
  reply.id = request.id;
  switch (status.code()) {
    case StatusCode::kUnavailable:
      if (StartsWith(status.message(), "draining")) {
        reply.kind = Reply::Kind::kDraining;
        return reply;
      }
      reply.kind = Reply::Kind::kBusy;
      reply.text = status.message();
      return reply;
    case StatusCode::kDeadlineExceeded:
      reply.kind = Reply::Kind::kErr;
      reply.text = "deadline exceeded: " + status.message();
      return reply;
    default:
      reply.kind = Reply::Kind::kErr;
      reply.text = status.ToString();
      return reply;
  }
}

Reply ParseErrorReply(int proto, uint64_t id, const Status& status) {
  Reply reply;
  reply.proto = proto;
  reply.id = id;
  reply.kind = Reply::Kind::kErr;
  reply.text = status.message();
  return reply;
}

// Reply formatting runs once per served request; these appenders keep it
// to a handful of in-place writes instead of an ostringstream.
void AppendInt(std::string* out, int64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out->append(buf, res.ptr);
}

void AppendUint(std::string* out, uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out->append(buf, res.ptr);
}

void AppendScore(std::string* out, float score) {
  char buf[32];
  const int n =
      std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(score));
  out->append(buf, static_cast<size_t>(n));
}

void AppendStale(std::string* out, bool stale) {
  if (stale) out->append(" STALE");
}

Reply MakeScoreReplyFor(const Request& request, const ScoreReply& score) {
  Reply reply;
  reply.proto = request.proto;
  reply.id = request.id;
  reply.kind = Reply::Kind::kScore;
  reply.score = score;
  return reply;
}

Reply MakeRankReplyFor(const Request& request, const RankReply& rank) {
  Reply reply;
  reply.proto = request.proto;
  reply.id = request.id;
  reply.kind = Reply::Kind::kRank;
  reply.model_version = rank.model_version;
  reply.stale = rank.stale;
  const int64_t n = static_cast<int64_t>(rank.scores.size());
  reply.k = std::max<int64_t>(0, std::min(request.k, n));
  reply.top = TopK(rank.scores, reply.k);
  return reply;
}

}  // namespace

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kServing: return "SERVING";
    case HealthState::kDegraded: return "DEGRADED";
    case HealthState::kDraining: return "DRAINING";
  }
  return "UNKNOWN";
}

std::string FormatScoreValue(float score) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(score));
  return buf;
}

std::vector<RankEntry> TopK(const std::vector<float>& scores, int64_t k) {
  const int64_t n = static_cast<int64_t>(scores.size());
  k = std::max<int64_t>(0, std::min(k, n));
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return scores[static_cast<size_t>(a)] > scores[static_cast<size_t>(b)];
  });
  std::vector<RankEntry> top;
  top.reserve(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) {
    const int64_t stock = order[static_cast<size_t>(i)];
    top.push_back({stock, scores[static_cast<size_t>(stock)]});
  }
  return top;
}

Result<Request> ParseRequest(const std::string& line) {
  const std::vector<std::string_view> parts = Tokenize(line);
  Request request;
  if (parts.empty()) return Status::InvalidArgument("empty command");
  if (parts[0] == "2") {
    // v2 framing: "2 <id> <VERB> ...".
    request.proto = 2;
    if (parts.size() < 3 || !ParseUint(parts[1], &request.id)) {
      return Status::InvalidArgument(
          "malformed v2 frame (want: 2 <id> <verb> ...)");
    }
    RTGCN_RETURN_NOT_OK(ParseVerb(parts, 2, &request));
    return request;
  }
  request.proto = 1;
  RTGCN_RETURN_NOT_OK(ParseVerb(parts, 0, &request));
  return request;
}

std::string FormatRequest(const Request& request) {
  std::ostringstream out;
  if (request.proto >= 2) out << "2 " << request.id << ' ';
  switch (request.verb) {
    case Request::Verb::kPing: out << "PING"; break;
    case Request::Verb::kHealth: out << "HEALTH"; break;
    case Request::Verb::kStats: out << "STATS"; break;
    case Request::Verb::kQuit: out << "QUIT"; break;
    case Request::Verb::kScore:
      out << "SCORE " << request.day << ' ' << request.stock;
      break;
    case Request::Verb::kRank:
      out << "RANK " << request.day << ' ' << request.k;
      break;
    case Request::Verb::kScoreBatch:
      out << "SCOREN " << request.day << ' ' << request.stocks.size();
      for (int64_t stock : request.stocks) out << ' ' << stock;
      break;
    case Request::Verb::kProto:
      out << "PROTO";
      if (request.proto_version > 0) out << ' ' << request.proto_version;
      break;
  }
  const bool takes_deadline = request.verb == Request::Verb::kScore ||
                              request.verb == Request::Verb::kRank ||
                              request.verb == Request::Verb::kScoreBatch;
  if (takes_deadline && request.deadline_ms > 0) {
    out << " DEADLINE " << request.deadline_ms;
  }
  return out.str();
}

std::string FormatReply(const Reply& reply) {
  std::string out;
  out.reserve(64);
  if (reply.proto >= 2) {
    out.append("2 ");
    AppendUint(&out, reply.id);
    out.push_back(' ');
  }
  switch (reply.kind) {
    case Reply::Kind::kPong:
      out.append("PONG");
      break;
    case Reply::Kind::kScore:
      out.append("OK ");
      AppendInt(&out, reply.score.model_version);
      out.push_back(' ');
      AppendScore(&out, reply.score.score);
      out.push_back(' ');
      AppendInt(&out, reply.score.rank);
      out.push_back(' ');
      AppendInt(&out, reply.score.num_stocks);
      AppendStale(&out, reply.score.stale);
      break;
    case Reply::Kind::kRank:
      out.append("OK ");
      AppendInt(&out, reply.model_version);
      out.push_back(' ');
      AppendInt(&out, reply.k);
      for (const RankEntry& e : reply.top) {
        out.push_back(' ');
        AppendInt(&out, e.stock);
        out.push_back(':');
        AppendScore(&out, e.score);
      }
      AppendStale(&out, reply.stale);
      break;
    case Reply::Kind::kScoreBatch:
      out.append("OK ");
      AppendInt(&out, reply.model_version);
      out.push_back(' ');
      AppendUint(&out, reply.batch.size());
      for (size_t i = 0; i < reply.batch.size(); ++i) {
        out.push_back(' ');
        AppendInt(&out, reply.batch_stocks[i]);
        out.push_back(':');
        AppendScore(&out, reply.batch[i].score);
        out.push_back(':');
        AppendInt(&out, reply.batch[i].rank);
      }
      AppendStale(&out, reply.stale);
      break;
    case Reply::Kind::kHealth:
      out.append("OK ");
      out.append(reply.text);
      break;
    case Reply::Kind::kProtoAck:
      out.append("OK PROTO ");
      AppendInt(&out, reply.proto_version);
      out.append(" SHARDS ");
      AppendInt(&out, reply.shards);
      out.append(" VERSION ");
      AppendInt(&out, reply.current_version);
      break;
    case Reply::Kind::kStats:
      out.append(reply.text);
      out.append("END");
      break;
    case Reply::Kind::kErr:
      out.append("ERR ");
      out.append(reply.text);
      break;
    case Reply::Kind::kBusy:
      out.append("BUSY ");
      out.append(reply.text);
      break;
    case Reply::Kind::kDraining:
      out.append("DRAINING");
      break;
  }
  return out;
}

Result<Reply> ParseReply(const std::string& line, const Request& sent) {
  Reply reply;
  reply.proto = 1;
  // Reply parsing is client-side (not the serving hot path); materialized
  // tokens keep the null-terminated strtof/substr idioms below simple.
  std::vector<std::string> parts;
  for (const std::string_view t : Tokenize(line)) parts.emplace_back(t);
  size_t at = 0;
  if (sent.proto >= 2 && parts.size() >= 2 && parts[0] == "2") {
    reply.proto = 2;
    if (!ParseUint(parts[1], &reply.id)) {
      return Status::Internal("malformed v2 reply frame: ", line);
    }
    at = 2;
  }
  if (parts.size() <= at) return Status::Internal("empty reply: ", line);
  const std::string& head = parts[at];
  if (head == "PONG") {
    reply.kind = Reply::Kind::kPong;
    return reply;
  }
  if (head == "DRAINING") {
    reply.kind = Reply::Kind::kDraining;
    return reply;
  }
  if (head == "BUSY" || head == "ERR") {
    reply.kind = head == "BUSY" ? Reply::Kind::kBusy : Reply::Kind::kErr;
    std::string text;
    for (size_t i = at + 1; i < parts.size(); ++i) {
      if (!text.empty()) text += ' ';
      text += parts[i];
    }
    reply.text = text;
    return reply;
  }
  if (head != "OK") return Status::Internal("malformed reply: ", line);

  // OK payload: shape depends on what was asked.
  const auto tail_is_stale = [&](size_t payload_end) {
    return parts.size() > payload_end && parts.back() == "STALE";
  };
  switch (sent.verb) {
    case Request::Verb::kHealth: {
      reply.kind = Reply::Kind::kHealth;
      std::string text;
      for (size_t i = at + 1; i < parts.size(); ++i) {
        if (!text.empty()) text += ' ';
        text += parts[i];
      }
      reply.text = text;
      return reply;
    }
    case Request::Verb::kProto: {
      // OK PROTO <v> SHARDS <k> VERSION <ver>
      if (parts.size() != at + 7 || parts[at + 1] != "PROTO" ||
          parts[at + 3] != "SHARDS" || parts[at + 5] != "VERSION") {
        return Status::Internal("malformed PROTO ack: ", line);
      }
      int64_t v = 0;
      reply.kind = Reply::Kind::kProtoAck;
      if (!ParseInt(parts[at + 2], &v) ||
          !ParseInt(parts[at + 4], &reply.shards) ||
          !ParseInt(parts[at + 6], &reply.current_version)) {
        return Status::Internal("malformed PROTO ack: ", line);
      }
      reply.proto_version = static_cast<int>(v);
      return reply;
    }
    case Request::Verb::kScore: {
      // OK <version> <score> <rank> <n> [STALE]
      if (parts.size() < at + 5) {
        return Status::Internal("malformed SCORE reply: ", line);
      }
      reply.kind = Reply::Kind::kScore;
      int64_t version = 0;
      if (!ParseInt(parts[at + 1], &version) ||
          !ParseInt(parts[at + 3], &reply.score.rank) ||
          !ParseInt(parts[at + 4], &reply.score.num_stocks)) {
        return Status::Internal("malformed SCORE reply: ", line);
      }
      reply.score.model_version = version;
      char* end = nullptr;
      reply.score.score = std::strtof(parts[at + 2].c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::Internal("malformed SCORE reply: ", line);
      }
      reply.score.stale = tail_is_stale(at + 4);
      return reply;
    }
    case Request::Verb::kRank: {
      // OK <version> <k> <stock>:<score>... [STALE]
      if (parts.size() < at + 3) {
        return Status::Internal("malformed RANK reply: ", line);
      }
      reply.kind = Reply::Kind::kRank;
      if (!ParseInt(parts[at + 1], &reply.model_version) ||
          !ParseInt(parts[at + 2], &reply.k) || reply.k < 0) {
        return Status::Internal("malformed RANK reply: ", line);
      }
      if (parts.size() < at + 3 + static_cast<size_t>(reply.k)) {
        return Status::Internal("truncated RANK reply: ", line);
      }
      reply.top.reserve(static_cast<size_t>(reply.k));
      for (int64_t i = 0; i < reply.k; ++i) {
        const std::string& entry = parts[at + 3 + static_cast<size_t>(i)];
        const size_t colon = entry.find(':');
        if (colon == std::string::npos) {
          return Status::Internal("malformed RANK entry: ", entry);
        }
        RankEntry e;
        e.stock = std::strtoll(entry.substr(0, colon).c_str(), nullptr, 10);
        e.score = std::strtof(entry.c_str() + colon + 1, nullptr);
        reply.top.push_back(e);
      }
      reply.stale = tail_is_stale(at + 2 + static_cast<size_t>(reply.k));
      return reply;
    }
    case Request::Verb::kScoreBatch: {
      // OK <version> <n> <stock>:<score>:<rank>... [STALE]
      if (parts.size() < at + 3) {
        return Status::Internal("malformed SCOREN reply: ", line);
      }
      reply.kind = Reply::Kind::kScoreBatch;
      int64_t n = 0;
      if (!ParseInt(parts[at + 1], &reply.model_version) ||
          !ParseInt(parts[at + 2], &n) || n < 0 ||
          parts.size() < at + 3 + static_cast<size_t>(n)) {
        return Status::Internal("malformed SCOREN reply: ", line);
      }
      reply.stale = tail_is_stale(at + 2 + static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        const std::string& entry = parts[at + 3 + static_cast<size_t>(i)];
        const std::vector<std::string> fields = Split(entry, ':');
        if (fields.size() != 3) {
          return Status::Internal("malformed SCOREN entry: ", entry);
        }
        ScoreReply s;
        s.model_version = reply.model_version;
        s.stale = reply.stale;
        int64_t stock = 0;
        if (!ParseInt(fields[0], &stock) || !ParseInt(fields[2], &s.rank)) {
          return Status::Internal("malformed SCOREN entry: ", entry);
        }
        s.score = std::strtof(fields[1].c_str(), nullptr);
        reply.batch_stocks.push_back(stock);
        reply.batch.push_back(s);
      }
      return reply;
    }
    default:
      return Status::Internal("unexpected OK reply: ", line);
  }
}

std::string ExecuteLine(Backend* backend, Metrics* metrics,
                        const std::string& line) {
  obs::Span span("serve.handle_line", "serve");
  auto parsed = ParseRequest(line);
  if (!parsed.ok()) {
    // Parse failures reply under the framing the line arrived in: a
    // malformed v2 frame whose id was still readable echoes it.
    int proto = 1;
    uint64_t id = 0;
    const std::vector<std::string_view> parts = Tokenize(line);
    if (!parts.empty() && parts[0] == "2" && parts.size() >= 2 &&
        ParseUint(parts[1], &id)) {
      proto = 2;
    }
    return FormatReply(ParseErrorReply(proto, id, parsed.status()));
  }
  const Request& request = parsed.ValueOrDie();
  Reply reply;
  reply.proto = request.proto;
  reply.id = request.id;
  switch (request.verb) {
    case Request::Verb::kQuit:
      return "";  // front ends close the connection; nothing on the wire
    case Request::Verb::kPing:
      reply.kind = Reply::Kind::kPong;
      return FormatReply(reply);
    case Request::Verb::kHealth:
      reply.kind = Reply::Kind::kHealth;
      reply.text = backend->HealthLine();
      return FormatReply(reply);
    case Request::Verb::kProto: {
      const int v = request.proto_version == 0 ? kProtoMax
                                               : request.proto_version;
      if (v < kProtoMin || v > kProtoMax) {
        reply.kind = Reply::Kind::kErr;
        std::ostringstream msg;
        msg << "unsupported protocol version " << v << " (supported: "
            << kProtoMin << ".." << kProtoMax << ")";
        reply.text = msg.str();
        return FormatReply(reply);
      }
      reply.kind = Reply::Kind::kProtoAck;
      reply.proto_version = v;
      reply.shards = backend->num_shards();
      reply.current_version = backend->CurrentVersion();
      return FormatReply(reply);
    }
    case Request::Verb::kStats: {
      // Serving metrics first (stable field set), then whatever the rest
      // of the process published to the global registry — both render
      // through obs::Registry.
      reply.kind = Reply::Kind::kStats;
      std::string text = metrics ? metrics->DumpText() : "";
      text += obs::Registry::Global().DumpText();
      reply.text = std::move(text);
      return FormatReply(reply);
    }
    case Request::Verb::kScore: {
      auto result =
          backend->Score(request.day, request.stock, {request.deadline_ms});
      if (!result.ok()) {
        return FormatReply(ErrorReplyFor(request, result.status()));
      }
      return FormatReply(MakeScoreReplyFor(request, result.ValueOrDie()));
    }
    case Request::Verb::kRank: {
      auto result = backend->Rank(request.day, {request.deadline_ms});
      if (!result.ok()) {
        return FormatReply(ErrorReplyFor(request, result.status()));
      }
      return FormatReply(MakeRankReplyFor(request, result.ValueOrDie()));
    }
    case Request::Verb::kScoreBatch: {
      // One Rank() execution answers every stock of the line — the batch
      // never fans out into per-stock queue entries.
      auto result = backend->Rank(request.day, {request.deadline_ms});
      if (!result.ok()) {
        return FormatReply(ErrorReplyFor(request, result.status()));
      }
      const RankReply& rank = result.ValueOrDie();
      const int64_t n = static_cast<int64_t>(rank.scores.size());
      std::vector<int64_t> ranks(static_cast<size_t>(n));
      const std::vector<RankEntry> order = TopK(rank.scores, n);
      for (int64_t r = 0; r < n; ++r) {
        ranks[static_cast<size_t>(order[static_cast<size_t>(r)].stock)] = r;
      }
      reply.kind = Reply::Kind::kScoreBatch;
      reply.model_version = rank.model_version;
      reply.stale = rank.stale;
      for (int64_t stock : request.stocks) {
        if (stock < 0 || stock >= n) {
          reply.kind = Reply::Kind::kErr;
          std::ostringstream msg;
          msg << "stock " << stock << " out of range [0, " << n << ")";
          reply.text = msg.str();
          return FormatReply(reply);
        }
        ScoreReply s;
        s.model_version = rank.model_version;
        s.score = rank.scores[static_cast<size_t>(stock)];
        s.rank = ranks[static_cast<size_t>(stock)];
        s.num_stocks = n;
        s.stale = rank.stale;
        reply.batch_stocks.push_back(stock);
        reply.batch.push_back(s);
      }
      return FormatReply(reply);
    }
  }
  reply.kind = Reply::Kind::kErr;
  reply.text = "unknown command";
  return FormatReply(reply);
}

bool TryExecuteLineFast(Backend* backend, Metrics* metrics,
                        const std::string& line, std::string* reply) {
  // Fast parse gate: only SCORE/RANK lines (either framing) can be
  // answered from cache; everything else goes through ExecuteLine.
  auto parsed = ParseRequest(line);
  if (!parsed.ok()) return false;
  const Request& request = parsed.ValueOrDie();
  const uint64_t t0 = obs::NowMicros();
  if (request.verb == Request::Verb::kScore) {
    ScoreReply score;
    if (!backend->TryScoreCached(request.day, request.stock, &score)) {
      return false;
    }
    if (metrics) {
      metrics->requests.fetch_add(1, std::memory_order_relaxed);
      metrics->responses_ok.fetch_add(1, std::memory_order_relaxed);
      metrics->latency.Record(obs::ElapsedMicrosSince(t0));
    }
    *reply = FormatReply(MakeScoreReplyFor(request, score));
    return true;
  }
  if (request.verb == Request::Verb::kRank) {
    RankReply rank;
    if (!backend->TryRankCached(request.day, &rank)) return false;
    if (metrics) {
      metrics->requests.fetch_add(1, std::memory_order_relaxed);
      metrics->responses_ok.fetch_add(1, std::memory_order_relaxed);
      metrics->latency.Record(obs::ElapsedMicrosSince(t0));
    }
    *reply = FormatReply(MakeRankReplyFor(request, rank));
    return true;
  }
  return false;
}

}  // namespace rtgcn::serve
