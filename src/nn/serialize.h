// Model checkpointing: saves/loads a Module's parameters in a simple
// versioned binary format (shape-checked on load, so architecture mismatch
// fails loudly instead of silently corrupting a model).
#ifndef RTGCN_NN_SERIALIZE_H_
#define RTGCN_NN_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "nn/module.h"

namespace rtgcn::nn {

/// Writes all parameters of `module` (in registration order) to `path`.
Status SaveParameters(const Module& module, const std::string& path);

/// Loads parameters saved by SaveParameters into `module`. The module must
/// have the same architecture (same parameter count and shapes).
Status LoadParameters(Module* module, const std::string& path);

}  // namespace rtgcn::nn

#endif  // RTGCN_NN_SERIALIZE_H_
