#include "harness/checkpoint.h"

#include <algorithm>
#include <cstdio>

#include "common/file_util.h"
#include "common/logging.h"
#include "obs/clock.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace rtgcn::harness {

namespace {

constexpr char kPrefix[] = "ckpt-";
constexpr char kSuffix[] = ".rtgcn";

/// Parses "ckpt-00000012.rtgcn" -> 12; -1 for anything else (including the
/// ".tmp.<pid>" leftovers an interrupted atomic write leaves behind).
int64_t ParseCheckpointName(const std::string& name) {
  const size_t prefix_len = sizeof(kPrefix) - 1;
  const size_t suffix_len = sizeof(kSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return -1;
  if (name.compare(0, prefix_len, kPrefix) != 0) return -1;
  if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
    return -1;
  }
  int64_t epoch = 0;
  for (size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    epoch = epoch * 10 + (name[i] - '0');
    if (epoch > (int64_t{1} << 40)) return -1;
  }
  return epoch;
}

}  // namespace

CheckpointManager::CheckpointManager(Options options)
    : options_(std::move(options)) {}

Status CheckpointManager::Init() {
  if (options_.dir.empty()) {
    return Status::InvalidArgument("checkpoint directory not set");
  }
  return EnsureDirectory(options_.dir);
}

std::string CheckpointManager::CheckpointPath(int64_t epoch) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%08lld%s", kPrefix,
                static_cast<long long>(epoch), kSuffix);
  return options_.dir + "/" + name;
}

Result<std::vector<int64_t>> CheckpointManager::ListCheckpoints() const {
  auto entries = ListDirectory(options_.dir);
  if (!entries.ok()) return entries.status();
  std::vector<int64_t> epochs;
  for (const std::string& name : entries.ValueOrDie()) {
    const int64_t epoch = ParseCheckpointName(name);
    if (epoch >= 0) epochs.push_back(epoch);
  }
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

Status CheckpointManager::Save(const nn::Module& module,
                               const nn::TrainingState& state) {
  obs::Span span("ckpt.save", "ckpt");
  const uint64_t start_us = obs::NowMicros();
  RTGCN_RETURN_NOT_OK(
      nn::SaveCheckpoint(module, CheckpointPath(state.epoch), &state));
  auto& registry = obs::Registry::Global();
  registry.GetCounter("ckpt.saves")->Increment();
  registry
      .GetHistogram("ckpt.save_us", obs::BucketSpec::Exponential2(40))
      ->Record(static_cast<int64_t>(obs::ElapsedMicrosSince(start_us)));
  return Prune();
}

Status CheckpointManager::Prune() {
  if (options_.keep <= 0) return Status::OK();
  auto epochs = ListCheckpoints();
  if (!epochs.ok()) return epochs.status();
  const auto& list = epochs.ValueOrDie();
  const int64_t excess =
      static_cast<int64_t>(list.size()) - options_.keep;
  for (int64_t i = 0; i < excess; ++i) {
    RTGCN_RETURN_NOT_OK(RemoveFileIfExists(CheckpointPath(list[i])));
  }
  return Status::OK();
}

Status CheckpointManager::LoadLatest(nn::Module* module,
                                     nn::TrainingState* state) {
  obs::Span span("ckpt.load", "ckpt");
  auto epochs = ListCheckpoints();
  if (!epochs.ok()) return epochs.status();
  const auto& list = epochs.ValueOrDie();
  for (auto it = list.rbegin(); it != list.rend(); ++it) {
    const std::string path = CheckpointPath(*it);
    const Status status = nn::LoadCheckpoint(module, path, state);
    if (status.ok()) {
      obs::Registry::Global().GetCounter("ckpt.loads")->Increment();
      return status;
    }
    RTGCN_LOG(Warning) << "skipping unloadable checkpoint " << path << ": "
                       << status.ToString();
  }
  return Status::NotFound("no loadable checkpoint in ", options_.dir);
}

}  // namespace rtgcn::harness
