#include <gtest/gtest.h>

#include <cmath>

#include "rank/backtest.h"
#include "rank/metrics.h"
#include "rank/wilcoxon.h"

namespace rtgcn::rank {
namespace {

TEST(MetricsTest, RankDescendingOrder) {
  Tensor scores({4}, {0.1f, 0.4f, -0.2f, 0.4f});
  auto order = RankDescending(scores);
  EXPECT_EQ(order, (std::vector<int64_t>{1, 3, 0, 2}));  // stable ties
}

TEST(MetricsTest, TopK) {
  Tensor scores({5}, {5, 1, 4, 2, 3});
  EXPECT_EQ(TopK(scores, 2), (std::vector<int64_t>{0, 2}));
  EXPECT_EQ(TopK(scores, 10).size(), 5u);  // clamped
}

TEST(MetricsTest, ReciprocalRankPerfectAndWorst) {
  Tensor labels({4}, {0.04f, 0.03f, 0.02f, 0.01f});
  Tensor perfect({4}, {4, 3, 2, 1});
  EXPECT_DOUBLE_EQ(ReciprocalRankTop1(perfect, labels), 1.0);
  Tensor worst({4}, {1, 2, 3, 4});  // picks stock 3, true rank 4
  EXPECT_DOUBLE_EQ(ReciprocalRankTop1(worst, labels), 0.25);
}

TEST(MetricsTest, TopKReturnAveragesRealizedReturns) {
  Tensor scores({4}, {4, 3, 2, 1});
  Tensor labels({4}, {0.10f, 0.20f, -0.50f, -0.50f});
  EXPECT_NEAR(TopKReturn(scores, labels, 1), 0.10, 1e-6);
  EXPECT_NEAR(TopKReturn(scores, labels, 2), 0.15, 1e-6);
}

// Regression: degenerate inputs used to hit UB (front() on an empty rank
// vector, negative k into resize()) or a hard RTGCN_CHECK crash.
TEST(MetricsTest, TopKNegativeAndZeroKAreEmpty) {
  Tensor scores({3}, {1, 2, 3});
  EXPECT_TRUE(TopK(scores, 0).empty());
  EXPECT_TRUE(TopK(scores, -5).empty());
}

TEST(MetricsTest, ReciprocalRankEmptyScoresIsZero) {
  Tensor empty({0}, std::vector<float>{});
  EXPECT_DOUBLE_EQ(ReciprocalRankTop1(empty, empty), 0.0);
}

TEST(MetricsTest, TopKReturnDegenerateInputsAreZero) {
  Tensor scores({3}, {1, 2, 3});
  Tensor labels({3}, {0.1f, 0.2f, 0.3f});
  EXPECT_DOUBLE_EQ(TopKReturn(scores, labels, 0), 0.0);
  EXPECT_DOUBLE_EQ(TopKReturn(scores, labels, -1), 0.0);
  Tensor empty({0}, std::vector<float>{});
  EXPECT_DOUBLE_EQ(TopKReturn(empty, empty, 5), 0.0);
}

TEST(BacktesterTest, AccumulatesIrrAndCurves) {
  Backtester bt({1, 2});
  Tensor labels({3}, {0.1f, 0.0f, -0.1f});
  Tensor scores({3}, {3, 2, 1});
  bt.AddDay(scores, labels);
  bt.AddDay(scores, labels);
  BacktestResult r = bt.Finalize();
  EXPECT_EQ(r.num_days, 2);
  EXPECT_NEAR(r.irr.at(1), 0.2, 1e-6);
  EXPECT_NEAR(r.irr.at(2), 0.1, 1e-6);
  EXPECT_EQ(r.irr_curve.at(1).size(), 2u);
  EXPECT_NEAR(r.irr_curve.at(1)[0], 0.1, 1e-6);
  EXPECT_DOUBLE_EQ(r.mrr, 1.0);
}

TEST(BacktesterTest, MrrAveragesOverDays) {
  Backtester bt({1});
  Tensor labels({2}, {0.1f, 0.2f});
  bt.AddDay(Tensor({2}, {2, 1}), labels);  // picks worse stock: rr = 1/2
  bt.AddDay(Tensor({2}, {1, 2}), labels);  // picks best stock: rr = 1
  EXPECT_DOUBLE_EQ(bt.Finalize().mrr, 0.75);
}

TEST(IndexCurveTest, CumulativeIndexReturns) {
  std::vector<double> levels = {1.0, 1.1, 1.1 * 0.9, 1.1 * 0.9 * 1.2};
  auto curve = IndexReturnCurve(levels, 1, 4);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_NEAR(curve[0], 0.1, 1e-9);
  EXPECT_NEAR(curve[1], 0.0, 1e-9);
  EXPECT_NEAR(curve[2], 0.2, 1e-9);
}

// ---------------------------------------------------------------------------
// Wilcoxon signed-rank
// ---------------------------------------------------------------------------

TEST(WilcoxonTest, NormalSfSanity) {
  EXPECT_NEAR(NormalSf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalSf(1.6449), 0.05, 1e-3);
  EXPECT_NEAR(NormalSf(-10.0), 1.0, 1e-9);
}

TEST(WilcoxonTest, ClearlyGreaterGivesSmallP) {
  std::vector<double> a, b;
  for (int i = 0; i < 15; ++i) {
    a.push_back(1.0 + 0.01 * i);
    b.push_back(0.5 + 0.01 * i);
  }
  EXPECT_LT(PairedWilcoxonPValue(a, b), 0.01);
  // Reversed direction: p near 1.
  EXPECT_GT(PairedWilcoxonPValue(b, a), 0.95);
}

TEST(WilcoxonTest, IdenticalSamplesGiveP1) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(PairedWilcoxonPValue(a, a), 1.0);
}

TEST(WilcoxonTest, MixedDifferencesMiddlingP) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> b = {1.1, 1.9, 3.1, 3.9};
  const double p = PairedWilcoxonPValue(a, b);
  EXPECT_GT(p, 0.1);
  EXPECT_LT(p, 0.95);
}

TEST(WilcoxonTest, OneSampleAgainstMean) {
  std::vector<double> x;
  for (int i = 0; i < 15; ++i) x.push_back(0.5 + 0.01 * i);
  EXPECT_LT(OneSampleWilcoxonPValue(x, 0.3), 0.01);
  EXPECT_GT(OneSampleWilcoxonPValue(x, 0.8), 0.95);
}

TEST(WilcoxonTest, ExactSmallSampleMatchesKnownValues) {
  // n = 5, all differences positive and distinct: W+ is maximal, so the
  // exact one-sided p-value is 1/2^5.
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {0.9, 1.7, 2.6, 3.5, 4.4};
  EXPECT_DOUBLE_EQ(PairedWilcoxonPValue(a, b), 0.03125);

  // n = 6, differences {+1, +2, +3, +4, +5, -6}: W+ = 15 and
  // P(W+ >= 15) = 14/64 by enumeration of the exact null.
  std::vector<double> c = {1, 2, 3, 4, 5, 0};
  std::vector<double> d = {0, 0, 0, 0, 0, 6};
  EXPECT_DOUBLE_EQ(PairedWilcoxonPValue(c, d), 0.21875);
}

TEST(WilcoxonTest, ExactIsTieExact) {
  // Differences {-0.1, +0.1, -0.1, +0.1}: all |d| tie at midrank 2.5, so
  // W+ = 5 and P(W+ >= 5) over the 16 sign assignments is 11/16 — a value
  // the tabulated no-ties exact distribution cannot produce.
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> b = {1.1, 1.9, 3.1, 3.9};
  EXPECT_DOUBLE_EQ(PairedWilcoxonPValue(a, b), 0.6875);
}

TEST(WilcoxonTest, ExactAtThresholdAndNormalBeyond) {
  // n = 25 (the exact-path boundary), all positive: p = 2^-25 exactly.
  std::vector<double> x;
  for (int i = 0; i < 25; ++i) x.push_back(1.0 + 0.01 * i);
  EXPECT_DOUBLE_EQ(OneSampleWilcoxonPValue(x, 0.0), std::ldexp(1.0, -25));

  // n = 26 uses the normal approximation: no longer an exact power of two,
  // but still a far-tail value (z ≈ 4.44).
  x.push_back(1.26);
  const double p = OneSampleWilcoxonPValue(x, 0.0);
  EXPECT_GT(p, 1e-9);
  EXPECT_LT(p, 1e-4);
}

TEST(WilcoxonTest, HandlesTiesWithoutNan) {
  std::vector<double> a = {1, 1, 1, 2, 2, 3};
  std::vector<double> b = {0, 0, 0, 1, 1, 3};
  const double p = PairedWilcoxonPValue(a, b);
  EXPECT_FALSE(std::isnan(p));
  EXPECT_LT(p, 0.1);
}

}  // namespace
}  // namespace rtgcn::rank
