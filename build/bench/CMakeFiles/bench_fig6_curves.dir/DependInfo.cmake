
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_curves.cc" "bench/CMakeFiles/bench_fig6_curves.dir/bench_fig6_curves.cc.o" "gcc" "bench/CMakeFiles/bench_fig6_curves.dir/bench_fig6_curves.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/rtgcn_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/rtgcn_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rtgcn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/rtgcn_market.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rtgcn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/rtgcn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/rtgcn_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/rank/CMakeFiles/rtgcn_rank.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rtgcn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rtgcn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
