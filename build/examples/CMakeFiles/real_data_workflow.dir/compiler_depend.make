# Empty compiler generated dependencies file for real_data_workflow.
# This may be replaced when dependencies are built.
