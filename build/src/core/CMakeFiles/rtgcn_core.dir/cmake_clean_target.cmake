file(REMOVE_RECURSE
  "librtgcn_core.a"
)
