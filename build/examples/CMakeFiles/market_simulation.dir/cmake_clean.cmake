file(REMOVE_RECURSE
  "CMakeFiles/market_simulation.dir/market_simulation.cpp.o"
  "CMakeFiles/market_simulation.dir/market_simulation.cpp.o.d"
  "market_simulation"
  "market_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
