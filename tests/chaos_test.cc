// Chaos and overload-safety suite for the serving stack (DESIGN.md §13):
//
//  * ChaosInjector fault plans are deterministic in the seed;
//  * AdmissionController: reject-fast vs block-with-timeout, deadline-bound
//    waits, drain semantics;
//  * request deadlines are shed promptly (at the deadline, not at the end
//    of the batch window) with a distinct DeadlineExceeded status;
//  * a full queue sheds instead of growing without bound;
//  * Stop() drains queued work and answers later requests with "draining";
//  * DEGRADED health (unpublished model, repeated reload failures) serves
//    cached scores flagged STALE instead of erroring;
//  * the end-to-end chaos scenario: concurrent retrying clients, a fault
//    injector corrupting replies, hostile raw clients, and a corrupt
//    checkpoint published mid-reload — the server must not crash or hang,
//    and every request must be accounted for:
//      requests == responses_ok + responses_error + expired + shed.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "autograd/ops.h"
#include "common/file_util.h"
#include "harness/checkpoint.h"
#include "harness/gradient_predictor.h"
#include "market/dataset.h"
#include "nn/linear.h"
#include "serve/admission.h"
#include "serve/chaos.h"
#include "serve/client.h"
#include "serve/config.h"
#include "serve/metrics.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "serve/socket_server.h"

namespace rtgcn::serve {
namespace {

using std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Fixture: the same tiny linear ranker serve_test.cc uses.
// ---------------------------------------------------------------------------

class LinearRanker : public harness::GradientPredictor {
 public:
  explicit LinearRanker(int64_t num_features, uint64_t seed = 1)
      : rng_(seed), linear_(num_features, 1, &rng_) {}

  std::string name() const override { return "LinearRanker"; }

 protected:
  nn::Module* module() override { return &linear_; }
  ag::VarPtr Forward(const Tensor& features, Rng*) override {
    const int64_t t_len = features.dim(0);
    const int64_t n = features.dim(1);
    const int64_t d = features.dim(2);
    auto x = ag::Constant(features);
    auto last = ag::Reshape(ag::SliceOp(x, 0, t_len - 1, t_len), {n, d});
    return ag::Reshape(linear_.Forward(last), {n});
  }
  float alpha() const override { return 0.0f; }

 private:
  Rng rng_;
  nn::Linear linear_;
};

market::WindowDataset MakePanel(int64_t days = 90, int64_t n = 10) {
  Rng rng(17);
  Tensor prices({days, n});
  for (int64_t i = 0; i < n; ++i) prices.at({0, i}) = 50.0f + 2.0f * i;
  for (int64_t t = 1; t < days; ++t) {
    for (int64_t i = 0; i < n; ++i) {
      const float drift = 0.002f * static_cast<float>((i % 5) - 2);
      const float noise = static_cast<float>(rng.Gaussian(0, 0.001));
      prices.at({t, i}) = prices.at({t - 1, i}) * (1.0f + drift + noise);
    }
  }
  return market::WindowDataset(prices, /*window=*/5, /*num_features=*/2);
}

ServableFactory MakeFactory() {
  return [] { return WrapPredictor(std::make_unique<LinearRanker>(2)); };
}

std::unique_ptr<LinearRanker> TrainAndExport(
    const market::WindowDataset& data, const std::string& dir, int64_t epoch,
    uint64_t seed) {
  auto model = std::make_unique<LinearRanker>(2, seed);
  harness::TrainOptions opts;
  opts.epochs = 1;
  opts.learning_rate = 1e-2f;
  opts.seed = seed;
  model->Fit(data, data.Days(data.first_day(), 60), opts);
  harness::CheckpointManager manager({dir, 1, 0});
  EXPECT_TRUE(manager.Init().ok());
  EXPECT_TRUE(model->ExportSnapshot(manager.CheckpointPath(epoch)).ok());
  return model;
}

void WriteCorruptCheckpoint(const std::string& dir, int64_t epoch) {
  harness::CheckpointManager manager({dir, 1, 0});
  ASSERT_TRUE(manager.Init().ok());
  std::ofstream out(manager.CheckpointPath(epoch), std::ios::binary);
  out << "this is not a checkpoint";
}

std::string TestDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "chaos_" + name + "_" +
                          std::to_string(::getpid());
  auto entries = ListDirectory(dir);
  if (entries.ok()) {
    for (const std::string& e : entries.ValueOrDie()) {
      std::remove((dir + "/" + e).c_str());
    }
  }
  ::rmdir(dir.c_str());
  return dir;
}

int64_t AccountedRequests(const Metrics& m) {
  return m.responses_ok.load(std::memory_order_relaxed) +
         m.responses_error.load(std::memory_order_relaxed) +
         m.expired.load(std::memory_order_relaxed) +
         m.shed.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// ChaosInjector determinism.
// ---------------------------------------------------------------------------

std::vector<ChaosInjector::ReplyPlan> DrawPlans(uint64_t seed, int n) {
  ChaosInjector::Options opts;
  opts.seed = seed;
  opts.delay_prob = 0.2;
  opts.drop_prob = 0.2;
  opts.truncate_prob = 0.2;
  opts.reset_prob = 0.2;
  ChaosInjector chaos(opts);
  std::vector<ChaosInjector::ReplyPlan> plans;
  plans.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) plans.push_back(chaos.PlanReply(64));
  EXPECT_EQ(chaos.plans(), static_cast<uint64_t>(n));
  EXPECT_EQ(chaos.faults(),
            chaos.delays() + chaos.drops() + chaos.truncates() + chaos.resets());
  return plans;
}

TEST(ChaosInjectorTest, SameSeedSamePlanSequence) {
  const auto a = DrawPlans(42, 300);
  const auto b = DrawPlans(42, 300);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].fault, b[i].fault) << "draw " << i;
    EXPECT_EQ(a[i].delay_ms, b[i].delay_ms) << "draw " << i;
    EXPECT_EQ(a[i].truncate_at, b[i].truncate_at) << "draw " << i;
  }
  // With 40% fault-free probability per draw, 300 draws from a different
  // seed diverge with overwhelming probability.
  const auto c = DrawPlans(43, 300);
  bool differs = false;
  for (size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i].fault != c[i].fault || a[i].delay_ms != c[i].delay_ms;
  }
  EXPECT_TRUE(differs);
}

TEST(ChaosInjectorTest, ZeroProbabilitiesNeverFault) {
  ChaosInjector chaos({/*seed=*/7});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(chaos.PlanReply(64).fault, ChaosInjector::ReplyFault::kNone);
  }
  EXPECT_EQ(chaos.faults(), 0u);
}

// ---------------------------------------------------------------------------
// AdmissionController.
// ---------------------------------------------------------------------------

TEST(AdmissionControllerTest, RejectFastCapsInUse) {
  AdmissionController gate({/*capacity=*/2, AdmissionPolicy::kRejectFast,
                            /*block_timeout_ms=*/50, "widgets"});
  EXPECT_TRUE(gate.Admit().ok());
  EXPECT_TRUE(gate.Admit().ok());
  EXPECT_EQ(gate.in_use(), 2);

  const Status full = gate.Admit();
  EXPECT_EQ(full.code(), StatusCode::kUnavailable);
  EXPECT_NE(full.ToString().find("widgets"), std::string::npos);

  gate.Release();
  EXPECT_TRUE(gate.Admit().ok());
}

TEST(AdmissionControllerTest, BlockWithTimeoutWaitsForSlot) {
  AdmissionController gate({/*capacity=*/1, AdmissionPolicy::kBlockWithTimeout,
                            /*block_timeout_ms=*/2000, "slots"});
  ASSERT_TRUE(gate.Admit().ok());
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    gate.Release();
  });
  // Blocks until the releaser frees the slot — well inside the timeout.
  EXPECT_TRUE(gate.Admit().ok());
  releaser.join();
  gate.Release();
}

TEST(AdmissionControllerTest, BlockWithTimeoutGivesUp) {
  AdmissionController gate({/*capacity=*/1, AdmissionPolicy::kBlockWithTimeout,
                            /*block_timeout_ms=*/30, "slots"});
  ASSERT_TRUE(gate.Admit().ok());
  const auto start = steady_clock::now();
  const Status full = gate.Admit();
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      steady_clock::now() - start);
  EXPECT_EQ(full.code(), StatusCode::kUnavailable);
  EXPECT_GE(waited.count(), 25);
}

TEST(AdmissionControllerTest, DeadlineBindsTheBlockWait) {
  AdmissionController gate({/*capacity=*/1, AdmissionPolicy::kBlockWithTimeout,
                            /*block_timeout_ms=*/5000, "slots"});
  ASSERT_TRUE(gate.Admit().ok());
  const auto start = steady_clock::now();
  const Status expired =
      gate.Admit(start + std::chrono::milliseconds(20));
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      steady_clock::now() - start);
  EXPECT_EQ(expired.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(waited.count(), 1000);  // the deadline, not the 5s block timeout
}

TEST(AdmissionControllerTest, DrainFailsWaitersAndLaterAdmits) {
  AdmissionController gate({/*capacity=*/1, AdmissionPolicy::kBlockWithTimeout,
                            /*block_timeout_ms=*/5000, "slots"});
  ASSERT_TRUE(gate.Admit().ok());
  std::atomic<bool> waiter_failed{false};
  std::thread waiter([&] {
    const Status s = gate.Admit();
    waiter_failed = !s.ok() &&
                    s.ToString().find("draining") != std::string::npos;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.CloseForDrain();  // wakes the parked waiter with "draining"
  waiter.join();
  EXPECT_TRUE(waiter_failed);

  const Status later = gate.Admit();
  EXPECT_EQ(later.code(), StatusCode::kUnavailable);
  EXPECT_NE(later.ToString().find("draining"), std::string::npos);

  gate.Release();
  gate.Reopen();
  EXPECT_TRUE(gate.Admit().ok());
}

// ---------------------------------------------------------------------------
// Server-level overload behaviour.
// ---------------------------------------------------------------------------

struct Stack {
  market::WindowDataset data = MakePanel();
  Metrics metrics;
  std::string dir;
  std::unique_ptr<ModelRegistry> registry;
  std::unique_ptr<InferenceServer> server;

  Stack(const std::string& name, InferenceServer::Options sopts,
        int64_t reload_interval_ms = 0) {
    dir = TestDir(name);
    TrainAndExport(data, dir, /*epoch=*/1, /*seed=*/61);
    registry = std::make_unique<ModelRegistry>(
        ModelRegistry::Options{dir, reload_interval_ms}, MakeFactory(),
        &metrics);
    EXPECT_TRUE(registry->Start().ok());
    server = std::make_unique<InferenceServer>(&data, registry.get(), sopts,
                                               &metrics);
    EXPECT_TRUE(server->Start().ok());
  }
  ~Stack() {
    server->Stop();
    registry->Stop();
  }
};

TEST(OverloadTest, DeadlineShedsAtTheDeadlineNotTheBatchWindow) {
  InferenceServer::Options sopts;
  sopts.max_batch = 64;
  sopts.batch_timeout_us = 200000;  // 200ms window the deadline must beat
  Stack stack("deadline", sopts);

  const auto start = steady_clock::now();
  auto result = stack.server->Score(stack.data.first_day(), 3,
                                    InferenceServer::RequestOptions{5});
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      steady_clock::now() - start);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // Shed at the 5ms deadline, far before the 200ms window flush.
  EXPECT_LT(waited.count(), 150);
  EXPECT_EQ(stack.metrics.expired.load(std::memory_order_relaxed), 1);
  EXPECT_EQ(stack.metrics.requests.load(std::memory_order_relaxed),
            AccountedRequests(stack.metrics));

  // A generous deadline does not perturb a normal reply.
  auto ok = stack.server->Score(stack.data.first_day(), 3,
                                InferenceServer::RequestOptions{10000});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_FALSE(ok.ValueOrDie().stale);
}

TEST(OverloadTest, FullQueueShedsRejectFast) {
  InferenceServer::Options sopts;
  sopts.max_queue = 1;
  sopts.max_batch = 64;
  sopts.batch_timeout_us = 100000;  // park the first request for 100ms
  Stack stack("queuefull", sopts);

  std::thread first([&] {
    auto r = stack.server->Score(stack.data.first_day(), 1);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  // Give the first request time to occupy the only queue slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const auto start = steady_clock::now();
  auto shed = stack.server->Score(stack.data.first_day(), 2);
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      steady_clock::now() - start);
  first.join();

  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_LT(waited.count(), 50);  // reject-fast, no parking
  EXPECT_EQ(stack.metrics.shed.load(std::memory_order_relaxed), 1);
  EXPECT_EQ(stack.metrics.requests.load(std::memory_order_relaxed),
            AccountedRequests(stack.metrics));
}

TEST(OverloadTest, BlockWithTimeoutRidesOutTheBurst) {
  InferenceServer::Options sopts;
  sopts.max_queue = 1;
  sopts.max_batch = 64;
  sopts.batch_timeout_us = 50000;
  sopts.admission = AdmissionPolicy::kBlockWithTimeout;
  sopts.admission_timeout_ms = 2000;
  Stack stack("block", sopts);

  std::thread first([&] {
    auto r = stack.server->Score(stack.data.first_day(), 1);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // Queue is full, but the block policy parks us until the batcher frees
  // the slot — both requests succeed.
  auto second = stack.server->Score(stack.data.first_day(), 2);
  first.join();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(stack.metrics.shed.load(std::memory_order_relaxed), 0);
  EXPECT_EQ(stack.metrics.responses_ok.load(std::memory_order_relaxed), 2);
}

TEST(OverloadTest, StopDrainsQueuedWorkAndRejectsNewRequests) {
  InferenceServer::Options sopts;
  sopts.max_batch = 64;
  sopts.batch_timeout_us = 200000;  // queued work would sit for 200ms...
  Stack stack("drain", sopts);

  constexpr int kInFlight = 8;
  std::vector<std::thread> threads;
  std::atomic<int> ok_count{0};
  for (int i = 0; i < kInFlight; ++i) {
    threads.emplace_back([&, i] {
      auto r = stack.server->Score(stack.data.first_day(), i % 5);
      if (r.ok()) ++ok_count;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const auto start = steady_clock::now();
  stack.server->Stop();  // ...but drain flushes them immediately
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      steady_clock::now() - start);
  for (auto& t : threads) t.join();

  EXPECT_EQ(ok_count.load(), kInFlight);
  EXPECT_LT(waited.count(), 150);

  auto after = stack.server->Score(stack.data.first_day(), 1);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(after.status().ToString().find("draining"), std::string::npos);
  EXPECT_EQ(stack.metrics.requests.load(std::memory_order_relaxed),
            AccountedRequests(stack.metrics));
}

// ---------------------------------------------------------------------------
// Graceful degradation: DEGRADED health and STALE serving.
// ---------------------------------------------------------------------------

TEST(DegradedTest, UnpublishedModelServesCachedScoresAsStale) {
  Stack stack("unpublish", {});
  const int64_t day = stack.data.first_day();

  auto fresh = stack.server->Score(day, 3);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_FALSE(fresh.ValueOrDie().stale);
  EXPECT_EQ(stack.server->Health(), HealthState::kServing);

  // Operator pulls the model (no poller: reload_interval_ms is 0, so it
  // stays down). Health flips DEGRADED; the day we served before comes
  // back from the stale cache, a day we never served errors.
  stack.registry->Unpublish();
  EXPECT_EQ(stack.server->Health(), HealthState::kDegraded);

  auto stale = stack.server->Score(day, 3);
  ASSERT_TRUE(stale.ok()) << stale.status().ToString();
  EXPECT_TRUE(stale.ValueOrDie().stale);
  EXPECT_EQ(stale.ValueOrDie().score, fresh.ValueOrDie().score);
  EXPECT_GE(stack.metrics.stale_served.load(std::memory_order_relaxed), 1);

  auto missing = stack.server->Score(day + 1, 3);
  EXPECT_FALSE(missing.ok());

  EXPECT_NE(stack.server->HealthLine().find("DEGRADED"), std::string::npos);
  EXPECT_EQ(stack.metrics.requests.load(std::memory_order_relaxed),
            AccountedRequests(stack.metrics));
}

TEST(DegradedTest, ReloadFailuresFlipDegradedAndRecoverOnPromotion) {
  InferenceServer::Options sopts;
  sopts.degraded_failure_threshold = 3;
  Stack stack("reloadfail", sopts);
  const int64_t day = stack.data.first_day();

  WriteCorruptCheckpoint(stack.dir, /*epoch=*/2);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(stack.registry->PollOnce());
  }
  EXPECT_GE(stack.registry->consecutive_reload_failures(), 3);
  EXPECT_EQ(stack.server->Health(), HealthState::kDegraded);

  // The old snapshot still serves, but replies are flagged stale: a newer
  // model exists that we cannot load.
  auto degraded = stack.server->Score(day, 3);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded.ValueOrDie().stale);

  // A loadable checkpoint recovers the registry and the health state.
  TrainAndExport(stack.data, stack.dir, /*epoch=*/3, /*seed=*/62);
  EXPECT_TRUE(stack.registry->PollOnce());
  EXPECT_EQ(stack.registry->consecutive_reload_failures(), 0);
  EXPECT_EQ(stack.server->Health(), HealthState::kServing);
  auto recovered = stack.server->Score(day, 3);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(recovered.ValueOrDie().stale);
  EXPECT_EQ(recovered.ValueOrDie().model_version, 3);
}

// ---------------------------------------------------------------------------
// Wire-level drain.
// ---------------------------------------------------------------------------

TEST(DrainWireTest, StoppedServerAnswersDraining) {
  Stack stack("drainwire", {});
  SocketServer front(stack.server.get(), &stack.metrics, {/*port=*/0});
  ASSERT_TRUE(front.Start().ok());

  stack.server->Stop();

  RawClient raw(front.port());
  ASSERT_TRUE(raw.connected());
  ASSERT_TRUE(raw.Send("SCORE " + std::to_string(stack.data.first_day()) +
                       " 1\n"));
  EXPECT_EQ(raw.ReadLine(), "DRAINING");
  ASSERT_TRUE(raw.Send("HEALTH\n"));
  const std::string health = raw.ReadLine();
  EXPECT_EQ(health.rfind("OK DRAINING", 0), 0u) << health;
  front.Stop();
}

// ---------------------------------------------------------------------------
// The end-to-end chaos scenario.
// ---------------------------------------------------------------------------

TEST(ChaosScenarioTest, ServerSurvivesChaosAndAccountsForEveryRequest) {
  market::WindowDataset data = MakePanel();
  const std::string dir = TestDir("scenario");
  auto model = TrainAndExport(data, dir, /*epoch=*/1, /*seed=*/61);

  Metrics metrics;
  ModelRegistry registry({dir, /*reload_interval_ms=*/5}, MakeFactory(),
                         &metrics);
  ASSERT_TRUE(registry.Start().ok());

  // One ServerConfig drives both layers, exactly as serve_server and
  // bench_serve wire it.
  ServerConfig cfg;
  cfg.max_queue = 64;
  cfg.max_line_bytes = 4096;
  ASSERT_TRUE(cfg.Validate().ok());
  InferenceServer server(&data, &registry, cfg.server_options(), &metrics);
  ASSERT_TRUE(server.Start().ok());

  ChaosInjector::Options copts;
  copts.seed = 1234;
  copts.delay_prob = 0.10;
  copts.drop_prob = 0.05;
  copts.truncate_prob = 0.05;
  copts.reset_prob = 0.05;
  copts.delay_ms_max = 5;
  ChaosInjector chaos(copts);

  SocketServer front(&server, &metrics, cfg.socket_options());
  front.SetChaos(&chaos);
  ASSERT_TRUE(front.Start().ok());

  // Load: retrying clients issuing SCORE/RANK, some with deadlines.
  constexpr int kClients = 4;
  constexpr int kPerClient = 30;
  std::atomic<int> client_ok{0}, client_err{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client::Options copts2;
      copts2.port = front.port();
      copts2.recv_timeout_ms = 500;
      copts2.max_attempts = 5;
      copts2.backoff_initial_ms = 2;
      copts2.backoff_max_ms = 20;
      copts2.seed = 100 + static_cast<uint64_t>(c);
      Client client(copts2, &metrics);
      for (int i = 0; i < kPerClient; ++i) {
        const int64_t day = data.first_day() + (i % 3);
        const int64_t deadline = (i % 7 == 0) ? 1000 : 0;
        bool ok;
        if (i % 2 == 0) {
          ok = client.Score(day, i % data.num_stocks(), deadline).ok();
        } else {
          ok = client.Rank(day, 3, deadline).ok();
        }
        (ok ? client_ok : client_err)++;
      }
    });
  }

  // Abuse: hostile clients hammering the same server.
  std::thread abuser([&] {
    for (int i = 0; i < 10; ++i) {
      RawClient raw(front.port());
      if (!raw.connected()) continue;
      switch (i % 4) {
        case 0:  // binary garbage
          raw.Send("\x00\x01\xfe garbage\n");
          raw.ReadLine(200);
          break;
        case 1:  // oversized line
          raw.Send(std::string(8192, 'A') + "\n");
          raw.ReadLine(200);
          break;
        case 2:  // half-open, then vanish
          raw.Send("PING\n");
          raw.CloseSend();
          raw.ReadLine(200);
          break;
        case 3:  // request, then RST without reading the reply
          raw.Send("RANK " + std::to_string(data.first_day()) + " 5\n");
          raw.Reset();
          break;
      }
    }
  });

  // Mid-run reload chaos: a corrupt checkpoint the live poller keeps
  // tripping over, then a good one that must eventually be promoted.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  WriteCorruptCheckpoint(dir, /*epoch=*/2);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  {
    harness::CheckpointManager manager({dir, 1, 0});
    ASSERT_TRUE(manager.Init().ok());
    ASSERT_TRUE(model->ExportSnapshot(manager.CheckpointPath(3)).ok());
  }

  for (auto& t : threads) t.join();
  abuser.join();

  // No crash, no hang — and the server is still answering cleanly.
  {
    Client::Options copts2;
    copts2.port = front.port();
    Client probe(copts2);
    auto health = probe.Health();
    ASSERT_TRUE(health.ok()) << health.status().ToString();
    auto sane = probe.Score(data.first_day(), 1);
    ASSERT_TRUE(sane.ok()) << sane.status().ToString();
  }

  front.Stop();
  server.Stop();
  registry.Stop();

  // The accounting invariant: every request that reached Submit ended in
  // exactly one terminal counter.
  EXPECT_EQ(metrics.requests.load(std::memory_order_relaxed),
            AccountedRequests(metrics));
  EXPECT_GE(metrics.requests.load(std::memory_order_relaxed),
            kClients * kPerClient);
  // The injector actually did something.
  EXPECT_GT(chaos.plans(), 0u);
  EXPECT_GT(chaos.faults(), 0u);
  // And the client layer absorbed the faults by retrying.
  EXPECT_GT(metrics.client_retries.load(std::memory_order_relaxed), 0);
  EXPECT_EQ(client_ok.load() + client_err.load(), kClients * kPerClient);
  // Dropped/truncated/reset replies force retries, so most calls succeed.
  EXPECT_GT(client_ok.load(), 0);
}

}  // namespace
}  // namespace rtgcn::serve
