
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rank/backtest.cc" "src/rank/CMakeFiles/rtgcn_rank.dir/backtest.cc.o" "gcc" "src/rank/CMakeFiles/rtgcn_rank.dir/backtest.cc.o.d"
  "/root/repo/src/rank/metrics.cc" "src/rank/CMakeFiles/rtgcn_rank.dir/metrics.cc.o" "gcc" "src/rank/CMakeFiles/rtgcn_rank.dir/metrics.cc.o.d"
  "/root/repo/src/rank/wilcoxon.cc" "src/rank/CMakeFiles/rtgcn_rank.dir/wilcoxon.cc.o" "gcc" "src/rank/CMakeFiles/rtgcn_rank.dir/wilcoxon.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/rtgcn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rtgcn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
