// Preset simulated markets mirroring the paper's three datasets (Table II /
// Table III) and a bundle type holding everything an experiment needs.
#ifndef RTGCN_MARKET_MARKET_H_
#define RTGCN_MARKET_MARKET_H_

#include <string>

#include "market/dataset.h"
#include "market/relation_generator.h"
#include "market/simulator.h"
#include "market/universe.h"

namespace rtgcn::market {

/// \brief Full specification of one simulated market.
struct MarketSpec {
  std::string name;
  int64_t num_stocks;
  int64_t num_industries;
  int64_t num_wiki_types;       ///< 0 for CSI (Table III: no wiki relations)
  double wiki_links_per_stock;
  int64_t train_days;           ///< days before the test boundary
  int64_t test_days;
  bool crash_at_test_start = true;  ///< COVID-like drawdown at the boundary
  uint64_t seed = 7;

  int64_t num_days() const { return train_days + test_days; }
  /// First test prediction day (also the crash day when enabled).
  int64_t test_boundary() const { return train_days; }
};

/// Scaled presets (defaults run a full baseline sweep on one CPU core;
/// `scale` > 1 grows the universe towards the paper's sizes: NASDAQ 854,
/// NYSE 1405, CSI 242 at scale ≈ 7).
MarketSpec NasdaqSpec(double scale = 1.0);
MarketSpec NyseSpec(double scale = 1.0);
MarketSpec CsiSpec(double scale = 1.0);

/// \brief Everything an experiment consumes.
struct MarketData {
  MarketSpec spec;
  StockUniverse universe;
  RelationData relations;
  SimulatedMarket sim;

  /// Builds the window dataset over this market's prices.
  WindowDataset MakeDataset(int64_t window, int64_t num_features) const {
    return WindowDataset(sim.prices, window, num_features);
  }
};

/// Generates universe + relations and simulates prices for `spec`.
MarketData BuildMarket(const MarketSpec& spec);

}  // namespace rtgcn::market

#endif  // RTGCN_MARKET_MARKET_H_
