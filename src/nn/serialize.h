// Crash-safe model checkpointing.
//
// Two on-disk formats share the "RTGC" magic:
//
//  * v1 (legacy): anonymous parameter list, no integrity protection. Still
//    readable; loads are transactional (a failed load leaves the module
//    byte-identical to its prior state).
//  * v2 (current): record stream with a named-parameter manifest, a CRC32
//    per record, and optional training-state records (optimizer moments,
//    RNG state, epoch/day cursor) so a killed training run can resume
//    bit-identically. Writes go through WriteFileAtomic (temp + fsync +
//    rename), so a crash mid-save never corrupts an existing checkpoint.
//
// Loads of either version stage everything, validate everything (names,
// shapes, CRCs, truncation), and only then commit — they either fully
// succeed or return an error leaving the module untouched.
#ifndef RTGCN_NN_SERIALIZE_H_
#define RTGCN_NN_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "autograd/optimizer.h"
#include "common/random.h"
#include "common/status.h"
#include "nn/module.h"

namespace rtgcn::nn {

/// \brief Everything beyond the weights needed to resume training exactly
/// where it stopped. `epoch` counts completed epochs; `day_cursor` counts
/// completed days inside the current epoch (0 at an epoch boundary);
/// `day_order` is the training-day permutation in effect at save time, so
/// the resumed run replays the identical shuffle sequence.
struct TrainingState {
  ag::OptimizerState optimizer;
  Rng::State rng;
  int64_t epoch = 0;
  int64_t day_cursor = 0;
  std::vector<int64_t> day_order;
  bool has_optimizer = false;
  bool has_rng = false;
  bool has_trainer = false;
};

/// Atomically writes a v2 checkpoint of `module` (and, when `state` is
/// non-null, its training state) to `path`.
Status SaveCheckpoint(const Module& module, const std::string& path,
                      const TrainingState* state = nullptr);

/// Loads a checkpoint (v1 or v2) into `module`; fills `state` (when
/// non-null) from the training-state records a v2 file carries. Names and
/// shapes must match the module's NamedParameters(). On any error —
/// truncation, CRC mismatch, name/shape mismatch — the module and `state`
/// are left untouched.
Status LoadCheckpoint(Module* module, const std::string& path,
                      TrainingState* state = nullptr);

/// Writes all parameters of `module` to `path` (v2, weights only).
Status SaveParameters(const Module& module, const std::string& path);

/// Loads parameters saved by SaveParameters / SaveCheckpoint (v1 or v2).
/// The module must have the same architecture (parameter names and shapes).
Status LoadParameters(Module* module, const std::string& path);

/// Writes the legacy v1 format (anonymous parameters, no CRC). Kept for
/// compatibility tests and for producing fixtures older tools can read.
Status SaveParametersV1(const Module& module, const std::string& path);

}  // namespace rtgcn::nn

#endif  // RTGCN_NN_SERIALIZE_H_
