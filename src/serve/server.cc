#include "serve/server.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/logging.h"
#include "obs/clock.h"
#include "obs/trace.h"

namespace rtgcn::serve {

namespace {

// (version, day) cache key. Checkpoint epochs are capped at 2^40 by the
// checkpoint name parser and a day index is bounded by the price panel
// (decades of trading days << 2^20), so the packing is collision-free.
uint64_t CacheKey(int64_t version, int64_t day) {
  return (static_cast<uint64_t>(version) << 20) |
         static_cast<uint64_t>(day);
}

}  // namespace

InferenceServer::InferenceServer(const market::WindowDataset* data,
                                 ModelRegistry* registry, Options options,
                                 Metrics* metrics)
    : data_(data), registry_(registry), options_(options), metrics_(metrics) {
  RTGCN_CHECK(data_ != nullptr);
  RTGCN_CHECK(registry_ != nullptr);
  options_.max_batch = std::max<int64_t>(options_.max_batch, 1);
  options_.batch_timeout_us = std::max<int64_t>(options_.batch_timeout_us, 0);
  options_.cache_capacity = std::max<int64_t>(options_.cache_capacity, 1);
}

InferenceServer::~InferenceServer() { Stop(); }

Status InferenceServer::Start() {
  std::lock_guard<std::mutex> lock(queue_mu_);
  if (running_) return Status::OK();
  running_ = true;
  stop_ = false;
  batcher_ = std::thread([this] { BatchLoop(); });
  return Status::OK();
}

void InferenceServer::Stop() {
  std::vector<Pending> orphans;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!running_) return;
    stop_ = true;
    orphans.assign(std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.end()));
    queue_.clear();
  }
  queue_cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    running_ = false;
  }
  for (Pending& p : orphans) {
    p.promise.set_value(Status::Internal("server stopped"));
    if (metrics_) {
      metrics_->responses_error.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

Result<InferenceServer::Scored> InferenceServer::Submit(int64_t day) {
  if (metrics_) metrics_->requests.fetch_add(1, std::memory_order_relaxed);
  std::future<Result<Scored>> future;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!running_ || stop_) {
      if (metrics_) {
        metrics_->responses_error.fetch_add(1, std::memory_order_relaxed);
      }
      return Status::Internal("inference server is not running");
    }
    Pending pending;
    pending.day = day;
    pending.enqueue = std::chrono::steady_clock::now();
    pending.enqueue_us = obs::NowMicros();
    future = pending.promise.get_future();
    queue_.push_back(std::move(pending));
  }
  queue_cv_.notify_one();
  return future.get();
}

Result<InferenceServer::RankReply> InferenceServer::Rank(int64_t day) {
  obs::Span span("serve.rank", "serve");
  auto scored = Submit(day);
  if (!scored.ok()) return scored.status();
  const Scored& s = scored.ValueOrDie();
  RankReply reply;
  reply.model_version = s.version;
  reply.day = day;
  reply.scores = s.day->scores;
  return reply;
}

Result<InferenceServer::ScoreReply> InferenceServer::Score(int64_t day,
                                                           int64_t stock) {
  obs::Span span("serve.score", "serve");
  if (stock < 0 || stock >= data_->num_stocks()) {
    if (metrics_) {
      metrics_->requests.fetch_add(1, std::memory_order_relaxed);
      metrics_->responses_error.fetch_add(1, std::memory_order_relaxed);
    }
    return Status::InvalidArgument("stock ", stock, " out of range [0, ",
                                   data_->num_stocks(), ")");
  }
  auto scored = Submit(day);
  if (!scored.ok()) return scored.status();
  const Scored& s = scored.ValueOrDie();
  ScoreReply reply;
  reply.model_version = s.version;
  reply.score = s.day->scores[static_cast<size_t>(stock)];
  reply.rank = s.day->ranks[static_cast<size_t>(stock)];
  reply.num_stocks = data_->num_stocks();
  return reply;
}

void InferenceServer::BatchLoop() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  while (true) {
    queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_) break;
    // Micro-batch window: flush at max_batch requests or batch_timeout_us
    // after the batch's first request, whichever comes first.
    if (options_.batch_timeout_us > 0 &&
        static_cast<int64_t>(queue_.size()) < options_.max_batch) {
      const auto deadline =
          queue_.front().enqueue +
          std::chrono::microseconds(options_.batch_timeout_us);
      queue_cv_.wait_until(lock, deadline, [this] {
        return stop_ ||
               static_cast<int64_t>(queue_.size()) >= options_.max_batch;
      });
      if (stop_) break;
    }
    std::vector<Pending> batch;
    {
      obs::Span assemble("serve.assemble", "serve");
      const int64_t take =
          std::min<int64_t>(options_.max_batch,
                            static_cast<int64_t>(queue_.size()));
      batch.reserve(static_cast<size_t>(take));
      for (int64_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    lock.unlock();
    ExecuteBatch(std::move(batch));
    lock.lock();
  }
}

Result<std::shared_ptr<const InferenceServer::DayScores>>
InferenceServer::ScoresFor(const ModelSnapshot& snapshot, int64_t day) {
  if (day < data_->first_day() || day > data_->last_day()) {
    return Status::InvalidArgument("day ", day, " outside the valid range [",
                                   data_->first_day(), ", ",
                                   data_->last_day(), "]");
  }
  const uint64_t key = CacheKey(snapshot.version(), day);
  if (options_.enable_cache) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      if (metrics_) {
        metrics_->cache_hits.fetch_add(1, std::memory_order_relaxed);
      }
      return it->second;
    }
  }
  if (metrics_) {
    metrics_->cache_misses.fetch_add(1, std::memory_order_relaxed);
    metrics_->forwards.fetch_add(1, std::memory_order_relaxed);
  }
  obs::Span span("serve.forward", "serve");
  const Tensor scores = snapshot.Score(data_->Features(day));
  const int64_t n = scores.numel();
  auto entry = std::make_shared<DayScores>();
  entry->scores.assign(scores.data(), scores.data() + n);
  // Dense ranks, best score first; ties broken by stock id so the ranking
  // is deterministic.
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return entry->scores[static_cast<size_t>(a)] >
           entry->scores[static_cast<size_t>(b)];
  });
  entry->ranks.assign(static_cast<size_t>(n), 0);
  for (int64_t r = 0; r < n; ++r) {
    entry->ranks[static_cast<size_t>(order[static_cast<size_t>(r)])] = r;
  }
  if (options_.enable_cache) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (cache_.emplace(key, entry).second) {
      cache_fifo_.push_back(key);
      while (static_cast<int64_t>(cache_fifo_.size()) >
             options_.cache_capacity) {
        cache_.erase(cache_fifo_.front());
        cache_fifo_.pop_front();
      }
    }
  }
  return std::shared_ptr<const DayScores>(std::move(entry));
}

void InferenceServer::ExecuteBatch(std::vector<Pending> batch) {
  obs::Span span("serve.batch", "serve");
  if (metrics_) {
    metrics_->batches.fetch_add(1, std::memory_order_relaxed);
    metrics_->batch_size.Record(static_cast<int64_t>(batch.size()));
  }
  // Pin exactly one published snapshot for the whole batch: every response
  // it produces maps to this version.
  const std::shared_ptr<const ModelSnapshot> snapshot = registry_->Current();
  // Days scored within this batch (coalesces same-day requests even when
  // the cross-batch cache is disabled).
  std::unordered_map<int64_t, Result<std::shared_ptr<const DayScores>>>
      by_day;
  for (Pending& p : batch) {
    Result<Scored> result = Status::Internal("unset");
    if (!snapshot) {
      result = Status::NotFound("no model version published yet");
    } else {
      auto it = by_day.find(p.day);
      if (it == by_day.end()) {
        it = by_day.emplace(p.day, ScoresFor(*snapshot, p.day)).first;
      }
      if (it->second.ok()) {
        result = Scored{snapshot->version(), it->second.ValueOrDie()};
      } else {
        result = it->second.status();
      }
    }
    const bool ok = result.ok();
    if (metrics_) {
      // Clamped single-clock-source elapsed time: can never go negative or
      // wrap, even if the clock is skewed (obs/clock.h).
      metrics_->latency.Record(obs::ElapsedMicrosSince(p.enqueue_us));
      (ok ? metrics_->responses_ok : metrics_->responses_error)
          .fetch_add(1, std::memory_order_relaxed);
    }
    obs::Span reply("serve.reply", "serve");
    p.promise.set_value(std::move(result));
  }
}

}  // namespace rtgcn::serve
