// Versioned typed wire protocol for the serving tier (DESIGN.md §15).
//
// This header is the single source of truth for the request/reply surface:
// both front ends (thread-per-connection SocketServer and the epoll
// AsyncServer) parse with ParseRequest and format with FormatReply, and
// serve::Client formats with FormatRequest and parses with ParseReply —
// there is exactly one grammar implementation on each side of the wire.
//
// Protocol v1 (the PR 4/8 line protocol) is kept byte-compatible as a
// compatibility shim; see DESIGN.md §15 for its deprecation note:
//
//   PING                              -> PONG
//   HEALTH                            -> OK SERVING|DEGRADED|DRAINING ...
//   STATS                             -> metrics text ..., END
//   SCORE <day> <stock> [DEADLINE ms] -> OK <ver> <score> <rank> <n> [STALE]
//   RANK <day> <k> [DEADLINE ms]      -> OK <ver> <k> <stock>:<score>... [STALE]
//
// Protocol v2 adds explicit framing, request ids (pipelining/batching), a
// batched score verb, and negotiation carrying shard/version metadata:
//
//   PROTO [<v>]        -> OK PROTO <v> SHARDS <k> VERSION <ver>
//   2 <id> PING        -> 2 <id> PONG
//   2 <id> HEALTH      -> 2 <id> OK <health line>
//   2 <id> SCORE <day> <stock> [DEADLINE ms]
//                      -> 2 <id> OK <ver> <score> <rank> <n> [STALE]
//   2 <id> RANK <day> <k> [DEADLINE ms]
//                      -> 2 <id> OK <ver> <k> <stock>:<score>... [STALE]
//   2 <id> SCOREN <day> <n> <stock>... [DEADLINE ms]
//                      -> 2 <id> OK <ver> <n> <stock>:<score>:<rank>... [STALE]
//   errors             -> 2 <id> ERR ... | 2 <id> BUSY ... | 2 <id> DRAINING
//
// The id is chosen by the client and echoed verbatim, so a client may
// write many v2 requests in one send and match replies without relying on
// ordering (both front ends do reply in request order per connection).
//
// Scores are printed with %.9g, which round-trips binary float32 exactly —
// replies compare bit-for-bit against a local forward pass.
#ifndef RTGCN_SERVE_PROTOCOL_H_
#define RTGCN_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/metrics.h"

namespace rtgcn::serve {

/// Lowest and highest wire protocol versions this build speaks.
inline constexpr int kProtoMin = 1;
inline constexpr int kProtoMax = 2;

/// Health state machine of a serving process (HEALTH wire command).
enum class HealthState {
  kServing,   ///< a snapshot is published and reloads are healthy
  kDegraded,  ///< no snapshot, or reload failures crossed the threshold
  kDraining,  ///< Stop() ran (or Start() never did): no new work admitted
};

const char* HealthStateName(HealthState state);

/// Per-request options (the wire protocol's optional DEADLINE suffix).
struct RequestOptions {
  int64_t deadline_ms = 0;  ///< shed if not executing within this; 0 = none
};

/// All-stock scores for one day, plus the model version that produced them.
struct RankReply {
  int64_t model_version = -1;
  int64_t day = -1;
  std::vector<float> scores;  ///< [N], index = stock id
  bool stale = false;         ///< served while DEGRADED
};

/// One stock's score and its rank (0 = best) among that day's scores.
struct ScoreReply {
  int64_t model_version = -1;
  float score = 0;
  int64_t rank = -1;
  int64_t num_stocks = 0;
  bool stale = false;
};

/// One (stock, score) pair of a top-k ranking.
struct RankEntry {
  int64_t stock = -1;
  float score = 0;
};

/// \brief What a front end needs from a query engine. Implemented by the
/// single-process InferenceServer and by the sharded ShardRouter, so every
/// front end serves either interchangeably.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Blocking: scores for every stock on prediction day `day`.
  virtual Result<RankReply> Rank(int64_t day, RequestOptions request) = 0;

  /// Blocking: score and rank of `stock` on prediction day `day`.
  virtual Result<ScoreReply> Score(int64_t day, int64_t stock,
                                   RequestOptions request) = 0;

  /// Non-blocking fast path: answers from cached scores without entering
  /// any queue. False when the request needs the blocking path (cache
  /// miss, degraded health, draining). Front ends use this to answer hot
  /// requests inline on the event loop.
  virtual bool TryRankCached(int64_t day, RankReply* out) {
    (void)day;
    (void)out;
    return false;
  }
  virtual bool TryScoreCached(int64_t day, int64_t stock, ScoreReply* out) {
    (void)day;
    (void)stock;
    (void)out;
    return false;
  }

  /// Current health; evaluating it advances degraded-seconds accounting.
  virtual HealthState Health() = 0;

  /// One-line health summary for the HEALTH wire command.
  virtual std::string HealthLine() = 0;

  /// Version of the currently published model, -1 when none (the PROTO
  /// ack's VERSION field).
  virtual int64_t CurrentVersion() const = 0;

  /// Worker shards behind this backend (the PROTO ack's SHARDS field).
  virtual int64_t num_shards() const { return 1; }
};

/// \brief One parsed request line, protocol version included.
struct Request {
  enum class Verb {
    kPing,
    kHealth,
    kStats,
    kScore,
    kRank,
    kScoreBatch,  ///< v2 SCOREN: several stocks of one day in one line
    kProto,       ///< negotiation: report protocol/shard/version metadata
    kQuit,
  };

  int proto = 1;     ///< wire framing the line arrived under (1 or 2)
  uint64_t id = 0;   ///< v2 request id, echoed in the reply (0 under v1)
  Verb verb = Verb::kPing;
  int64_t day = 0;
  int64_t stock = 0;             ///< kScore
  std::vector<int64_t> stocks;   ///< kScoreBatch
  int64_t k = 0;                 ///< kRank
  int64_t deadline_ms = 0;       ///< 0 = no deadline
  int proto_version = 0;         ///< kProto operand; 0 = highest supported
};

/// \brief One reply, typed; FormatReply renders the wire line.
struct Reply {
  enum class Kind {
    kPong,
    kScore,
    kRank,
    kScoreBatch,
    kHealth,
    kProtoAck,
    kStats,     ///< multi-line: text already contains trailing newline(s)
    kErr,
    kBusy,
    kDraining,
  };

  int proto = 1;
  uint64_t id = 0;
  Kind kind = Kind::kErr;
  std::string text;        ///< health line / stats body / error detail

  ScoreReply score;                 ///< kScore
  std::vector<int64_t> batch_stocks;///< kScoreBatch, aligned with batch
  std::vector<ScoreReply> batch;    ///< kScoreBatch
  int64_t k = 0;                    ///< kRank: entries requested (clamped)
  std::vector<RankEntry> top;       ///< kRank
  int64_t model_version = -1;       ///< kRank/kScoreBatch
  bool stale = false;               ///< kRank/kScoreBatch

  int proto_version = kProtoMax;    ///< kProtoAck
  int64_t shards = 1;               ///< kProtoAck
  int64_t current_version = -1;     ///< kProtoAck
};

/// Formats a float32 so it round-trips bit-exactly (%.9g).
std::string FormatScoreValue(float score);

/// Top-k of a full score vector: score descending, ties by stock id
/// ascending — the canonical ranking order every reply path uses.
std::vector<RankEntry> TopK(const std::vector<float>& scores, int64_t k);

/// Parses one request line (either protocol). The error message of a
/// malformed line is exactly the legacy wire text (e.g. "usage: SCORE
/// <day> <stock> [DEADLINE <ms>]"); servers prepend "ERR ".
Result<Request> ParseRequest(const std::string& line);

/// Renders a request as a wire line under `request.proto` framing.
std::string FormatRequest(const Request& request);

/// Renders a reply as a wire line (kStats renders body + "END").
std::string FormatReply(const Reply& reply);

/// Parses a reply line. `sent` tells the parser which request produced it
/// (v1 OK payloads are not self-describing). STATS bodies are read
/// line-by-line by the caller (ParseReply only sees the first line).
Result<Reply> ParseReply(const std::string& line, const Request& sent);

/// Executes one wire line against `backend` — the single server-side
/// dispatch shared by every front end. `metrics` may be null. kQuit
/// returns the empty string (connection teardown is the front end's job).
std::string ExecuteLine(Backend* backend, Metrics* metrics,
                        const std::string& line);

/// Non-blocking variant: true when the line was answered entirely from
/// cached scores (reply stored in *reply); false when it needs the
/// blocking ExecuteLine path. Safe to call on an event loop.
bool TryExecuteLineFast(Backend* backend, Metrics* metrics,
                        const std::string& line, std::string* reply);

}  // namespace rtgcn::serve

#endif  // RTGCN_SERVE_PROTOCOL_H_
