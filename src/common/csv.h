// Tiny CSV reader/writer used to persist simulated market data and
// benchmark outputs (so figures can be re-plotted outside C++).
#ifndef RTGCN_COMMON_CSV_H_
#define RTGCN_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace rtgcn {

/// \brief In-memory CSV table with a header row.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Returns the column index of `name` or -1.
  int ColumnIndex(const std::string& name) const;
};

/// Reads a CSV file with RFC-4180 quoting: quoted fields may contain
/// commas, doubled double-quotes, and line breaks. CRLF and LF files parse
/// identically; blank lines are skipped.
Result<CsvTable> ReadCsv(const std::string& path);

/// As above, but with `allow_ragged` true rows whose width differs from the
/// header are kept at their natural size instead of failing the read —
/// tolerant loaders (market/csv_loader.h) treat the missing cells as empty
/// and repair or reject them per their policy.
Result<CsvTable> ReadCsv(const std::string& path, bool allow_ragged);

/// Writes a CSV file, creating/truncating `path`. Fields containing a
/// comma, quote, or line break are quoted per RFC 4180, so any table
/// round-trips exactly through ReadCsv.
Status WriteCsv(const std::string& path, const CsvTable& table);

}  // namespace rtgcn

#endif  // RTGCN_COMMON_CSV_H_
