// Base class for neural-network modules.
//
// A Module owns named parameter Variables and registers (non-owning
// pointers to) submodules so that parameters() and set_training() recurse
// through the whole model tree.
#ifndef RTGCN_NN_MODULE_H_
#define RTGCN_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "common/random.h"

namespace rtgcn::nn {

using ag::VarPtr;
using rtgcn::Rng;

/// \brief Base for all trainable components.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module and its submodules.
  std::vector<VarPtr> Parameters() const {
    std::vector<VarPtr> out;
    CollectParameters(&out);
    return out;
  }

  /// Parameters with hierarchical names ("proj.weight", "m0.cell.bias"),
  /// in the same order as Parameters(). Submodules registered without an
  /// explicit name get a registration-order name ("m0", "m1", ...), so the
  /// manifest is deterministic for any module tree.
  std::vector<std::pair<std::string, VarPtr>> NamedParameters() const {
    std::vector<std::pair<std::string, VarPtr>> out;
    CollectNamedParameters("", &out);
    return out;
  }

  /// Total number of trainable scalars.
  int64_t NumParameters() const {
    int64_t n = 0;
    for (const auto& p : Parameters()) n += p->numel();
    return n;
  }

  /// Switches train/eval mode (affects dropout etc.) recursively.
  void SetTraining(bool training) {
    training_ = training;
    for (Module* m : submodules_) m->SetTraining(training);
  }

  bool training() const { return training_; }

 protected:
  /// Registers a parameter initialized to `init`; returns the Variable.
  VarPtr RegisterParameter(std::string name, Tensor init) {
    auto v = ag::MakeVariable(std::move(init), /*requires_grad=*/true);
    params_.emplace_back(std::move(name), v);
    return v;
  }

  /// Registers a child module (must outlive this module; typically a
  /// member). The unnamed form assigns a registration-order name.
  void RegisterModule(Module* module) {
    RegisterModule("m" + std::to_string(submodules_.size()), module);
  }
  void RegisterModule(std::string name, Module* module) {
    submodules_.push_back(module);
    submodule_names_.push_back(std::move(name));
  }

 private:
  void CollectParameters(std::vector<VarPtr>* out) const {
    for (const auto& [name, p] : params_) out->push_back(p);
    for (const Module* m : submodules_) m->CollectParameters(out);
  }

  void CollectNamedParameters(
      const std::string& prefix,
      std::vector<std::pair<std::string, VarPtr>>* out) const {
    for (const auto& [name, p] : params_) {
      out->emplace_back(prefix + name, p);
    }
    for (size_t i = 0; i < submodules_.size(); ++i) {
      submodules_[i]->CollectNamedParameters(
          prefix + submodule_names_[i] + ".", out);
    }
  }

  std::vector<std::pair<std::string, VarPtr>> params_;
  std::vector<Module*> submodules_;
  std::vector<std::string> submodule_names_;
  bool training_ = true;
};

}  // namespace rtgcn::nn

#endif  // RTGCN_NN_MODULE_H_
