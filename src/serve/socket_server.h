// POSIX-socket line-protocol front-end for the inference server.
//
// One accept thread plus one thread per connection; each connection is a
// newline-delimited request/response stream (see DESIGN.md §9 for the wire
// grammar):
//
//   PING                      -> PONG
//   SCORE <day> <stock>       -> OK <version> <score> <rank> <num_stocks>
//   RANK <day> <k>            -> OK <version> <k> <stock>:<score> ...
//   STATS                     -> metrics text ..., terminated by END
//   QUIT                      -> closes the connection
//   anything else / failure   -> ERR <message>
//
// Scores are printed with %.9g, which round-trips binary float32 exactly —
// a client can compare replies bit-for-bit against a local forward pass.
#ifndef RTGCN_SERVE_SOCKET_SERVER_H_
#define RTGCN_SERVE_SOCKET_SERVER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "serve/metrics.h"
#include "serve/server.h"

namespace rtgcn::serve {

/// \brief TCP listener translating the line protocol into InferenceServer
/// calls. `server` (and its metrics) must outlive the SocketServer.
class SocketServer {
 public:
  struct Options {
    int port = 0;      ///< 0 picks an ephemeral port (see port())
    int backlog = 64;
  };

  SocketServer(InferenceServer* server, Metrics* metrics, Options options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens, and starts the accept thread.
  Status Start();

  /// Closes the listener and all connections, then joins their threads.
  void Stop();

  /// Port actually bound (resolves an ephemeral request after Start).
  int port() const { return port_; }

  /// Executes one protocol line and returns the reply (without trailing
  /// newline; STATS replies are multi-line). Exposed for tests and shared
  /// with the connection handlers.
  std::string HandleLine(const std::string& line);

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  InferenceServer* server_;
  Metrics* metrics_;
  Options options_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread acceptor_;
  bool started_ = false;

  std::mutex conn_mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
  bool stopping_ = false;
};

}  // namespace rtgcn::serve

#endif  // RTGCN_SERVE_SOCKET_SERVER_H_
