# Empty dependencies file for bench_fig5_speed.
# This may be replaced when dependencies are built.
