#include "nn/temporal_conv.h"

#include "autograd/ops.h"
#include "tensor/init.h"

namespace rtgcn::nn {

CausalConv1d::CausalConv1d(int64_t in_channels, int64_t out_channels,
                           int64_t kernel_size, Rng* rng, int64_t dilation,
                           int64_t stride, bool weight_norm)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_size_(kernel_size),
      dilation_(dilation),
      stride_(stride),
      weight_norm_(weight_norm) {
  RTGCN_CHECK_GE(kernel_size, 1);
  RTGCN_CHECK_GE(dilation, 1);
  RTGCN_CHECK_GE(stride, 1);
  const int64_t fan_in = kernel_size * in_channels;
  v_ = RegisterParameter(
      "v", KaimingUniform({kernel_size, in_channels, out_channels}, fan_in,
                          rng));
  if (weight_norm_) {
    // Initialize the gain to the initial per-channel norm so the effective
    // weight starts equal to v (standard weight-norm initialization).
    Tensor norms = rtgcn::Sqrt(rtgcn::Sum(
        rtgcn::Sum(rtgcn::Square(v_->value), 0, true), 1, true));
    gain_ = RegisterParameter("gain", norms);
  }
  bias_ = RegisterParameter("bias", Tensor::Zeros({out_channels}));
}

ag::VarPtr CausalConv1d::EffectiveWeight() const {
  if (!weight_norm_) return v_;
  // w = g * v / ||v||, per output channel over (k, in).
  VarPtr sq = ag::Square(v_);
  VarPtr norm = ag::Sqrt(
      ag::AddScalar(ag::Sum(ag::Sum(sq, 0, true), 1, true), 1e-8f));
  return ag::Mul(ag::Div(v_, norm), gain_);
}

ag::VarPtr CausalConv1d::Forward(const VarPtr& x) const {
  RTGCN_CHECK_EQ(x->value.ndim(), 3);
  RTGCN_CHECK_EQ(x->value.dim(2), in_channels_);
  const int64_t t_len = x->value.dim(0);
  const int64_t n = x->value.dim(1);
  const int64_t pad = (kernel_size_ - 1) * dilation_;

  VarPtr xp = x;
  if (pad > 0) {
    VarPtr zeros = ag::Constant(Tensor::Zeros({pad, n, in_channels_}));
    xp = ag::ConcatOp({zeros, x}, 0);
  }
  VarPtr w = EffectiveWeight();

  // y[t] = sum_i xp[t + i*dilation] @ w[i]; tap i = 0 is the oldest input.
  VarPtr acc;
  for (int64_t i = 0; i < kernel_size_; ++i) {
    VarPtr xi = ag::SliceOp(xp, 0, i * dilation_, i * dilation_ + t_len);
    VarPtr flat = ag::Reshape(xi, {t_len * n, in_channels_});
    VarPtr wi = ag::Reshape(ag::SliceOp(w, 0, i, i + 1),
                            {in_channels_, out_channels_});
    VarPtr yi = ag::MatMul(flat, wi);
    acc = acc ? ag::Add(acc, yi) : yi;
  }
  acc = ag::Add(acc, bias_);
  VarPtr y = ag::Reshape(acc, {t_len, n, out_channels_});
  if (stride_ > 1) {
    // Keep the last sample of each stride window so the final output sees
    // the most recent time-step.
    const int64_t start = (t_len - 1) % stride_;
    y = ag::Downsample(y, 0, stride_, start);
  }
  return y;
}

TemporalConvBlock::TemporalConvBlock(int64_t in_channels, int64_t out_channels,
                                     int64_t kernel_size, Rng* rng,
                                     int64_t dilation, int64_t stride,
                                     float dropout)
    : conv1_(in_channels, out_channels, kernel_size, rng, /*dilation=*/1,
             stride),
      conv2_(out_channels, out_channels, kernel_size, rng, dilation, stride),
      stride_(stride),
      dropout_(dropout) {
  RegisterModule(&conv1_);
  RegisterModule(&conv2_);
  if (in_channels != out_channels || stride > 1) {
    downsample_ = std::make_unique<CausalConv1d>(
        in_channels, out_channels, /*kernel_size=*/1, rng, /*dilation=*/1,
        /*stride=*/1, /*weight_norm=*/false);
    RegisterModule(downsample_.get());
  }
}

ag::VarPtr TemporalConvBlock::Forward(const VarPtr& x, Rng* rng) const {
  VarPtr h = ag::Relu(conv1_.Forward(x));
  h = ag::Dropout(h, dropout_, training(), rng, /*spatial_axis=*/2);
  h = ag::Relu(conv2_.Forward(h));
  h = ag::Dropout(h, dropout_, training(), rng, /*spatial_axis=*/2);

  VarPtr res = downsample_ ? downsample_->Forward(x) : x;
  if (stride_ > 1) {
    // Align to the block's compressed time axis (ceil(ceil(T/s)/s) ==
    // ceil(T/s²) positions, last-sample aligned).
    const int64_t step = stride_ * stride_;
    const int64_t start = (res->value.dim(0) - 1) % step;
    res = ag::Downsample(res, 0, step, start);
  }
  return ag::Relu(ag::Add(h, res));
}

}  // namespace rtgcn::nn
