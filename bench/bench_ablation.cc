// Ablation bench for the design choices DESIGN.md §5 calls out — not a
// paper table, but the evidence behind this reproduction's resolved
// under-specifications:
//   * temporal stride / pooling (receptive-field compression),
//   * loss normalization (α with sum- vs mean-normalized ranking loss),
//   * relational filter width.
//
// Flags: --epochs 6  --reps 1  --scale 1.0
#include <cstdio>

#include "baselines/rtgcn_predictor.h"
#include "bench_common.h"
#include "harness/evaluator.h"

namespace rtgcn::bench {
namespace {

struct Variant {
  std::string tag;
  core::RtGcnConfig config;
  float alpha = 0.2f;
};

int Run(int argc, char** argv) {
  auto flags = ParseBenchFlags(argc, argv);
  const int64_t epochs = flags.GetInt("epochs", 6);
  const int64_t reps = flags.GetInt("reps", 1);

  market::MarketSpec spec = market::NasdaqSpec(ScaleFromFlags(flags));
  market::MarketData data = market::BuildMarket(spec);
  market::WindowDataset dataset = data.MakeDataset(15, 4);
  market::DatasetSplit split = SplitByDay(dataset, spec.test_boundary());

  std::vector<Variant> variants;
  {
    core::RtGcnConfig base;
    base.strategy = core::Strategy::kTimeSensitive;
    base.relational_filters = 32;

    Variant v{"default (stride 4, mean, f32)", base};
    variants.push_back(v);

    v = {"stride 2 (H = 4), mean pooling", base};
    v.config.temporal_stride = 2;
    variants.push_back(v);

    v = {"stride 1 (H = 15), mean pooling", base};
    v.config.temporal_stride = 1;
    variants.push_back(v);

    v = {"stride 2, last-position pooling", base};
    v.config.temporal_stride = 2;
    v.config.pooling = core::TemporalPooling::kLast;
    variants.push_back(v);

    v = {"filters 16", base};
    v.config.relational_filters = 16;
    variants.push_back(v);

    v = {"two stacked RT-GCN layers", base};
    v.config.num_layers = 2;
    v.config.temporal_stride = 2;
    variants.push_back(v);

    v = {"alpha 0 (regression only)", base};
    v.alpha = 0.0f;
    variants.push_back(v);
  }

  std::printf("=== Design-choice ablation — RT-GCN (T) on %s ===\n",
              spec.name.c_str());
  harness::TablePrinter table(
      {"Variant", "MRR", "IRR-1", "IRR-5", "IRR-10", "s/epoch"});
  for (const Variant& v : variants) {
    double mrr = 0, irr1 = 0, irr5 = 0, irr10 = 0, sec = 0;
    for (int64_t rep = 0; rep < reps; ++rep) {
      baselines::RtGcnPredictor model(data.relations.relations, v.config,
                                      v.alpha, 1000 + 31 * rep);
      harness::TrainOptions opts;
      opts.epochs = epochs;
      opts.seed = 2000 + 17 * rep;
      model.Fit(dataset, split.train_days, opts);
      Rng rng(5 + rep);
      auto eval = Evaluate(&model, dataset, split.test_days, &rng);
      mrr += eval.backtest.mrr / reps;
      irr1 += eval.backtest.irr.at(1) / reps;
      irr5 += eval.backtest.irr.at(5) / reps;
      irr10 += eval.backtest.irr.at(10) / reps;
      sec += model.fit_stats().seconds_per_epoch() / reps;
    }
    table.AddRow({v.tag, Fmt3(mrr), Fmt2(irr1), Fmt2(irr5), Fmt2(irr10),
                  Fmt2(sec)});
    std::printf("  done: %s\n", v.tag.c_str());
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nReading guide: weaker temporal compression (stride 1-2 with mean "
      "pooling) dilutes the recency signal; last-position pooling recovers "
      "it, matching the default's strong compression. alpha 0 drops the "
      "learning-to-rank term (Table IV's REG-vs-RAN contrast).\n");
  return 0;
}

}  // namespace
}  // namespace rtgcn::bench

int main(int argc, char** argv) { return rtgcn::bench::Run(argc, argv); }
