#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "autograd/optimizer.h"
#include "autograd/variable.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace rtgcn::ag {
namespace {

VarPtr Param(Tensor t) { return MakeVariable(std::move(t), true); }

TEST(VariableTest, LeafProperties) {
  auto v = Param(Tensor::Ones({2}));
  EXPECT_TRUE(v->is_leaf());
  EXPECT_TRUE(v->requires_grad);
  auto c = Constant(Tensor::Ones({2}));
  EXPECT_FALSE(c->requires_grad);
}

TEST(VariableTest, AccumulateGradReducesBroadcast) {
  auto v = Param(Tensor::Zeros({3}));
  v->AccumulateGrad(Tensor::Ones({4, 3}));
  EXPECT_TRUE(rtgcn::AllClose(v->grad, Tensor({3}, {4, 4, 4})));
  v->AccumulateGrad(Tensor::Ones({3}));
  EXPECT_TRUE(rtgcn::AllClose(v->grad, Tensor({3}, {5, 5, 5})));
}

TEST(BackwardTest, SimpleChain) {
  // loss = sum((x * 2 + 1)^2), dloss/dx = 2*(2x+1)*2
  auto x = Param(Tensor({2}, {1, 2}));
  auto y = SumAll(Square(AddScalar(MulScalar(x, 2.0f), 1.0f)));
  Backward(y);
  EXPECT_TRUE(rtgcn::AllClose(x->grad, Tensor({2}, {12, 20})));
}

TEST(BackwardTest, DiamondGraphAccumulates) {
  // z = x*x + x  -> dz/dx = 2x + 1, exercise fan-out accumulation.
  auto x = Param(Tensor({1}, {3}));
  auto z = SumAll(Add(Mul(x, x), x));
  Backward(z);
  EXPECT_FLOAT_EQ(x->grad.data()[0], 7.0f);
}

TEST(BackwardTest, ReusedNodeOnlyFiresOnce) {
  auto x = Param(Tensor({1}, {2}));
  auto h = Mul(x, x);        // h = x^2
  auto z = SumAll(Mul(h, h));  // z = x^4, dz/dx = 4x^3 = 32
  Backward(z);
  EXPECT_FLOAT_EQ(x->grad.data()[0], 32.0f);
}

TEST(BackwardTest, NoGradGuardSkipsTape) {
  auto x = Param(Tensor({1}, {2}));
  {
    NoGradGuard guard;
    auto y = Mul(x, x);
    EXPECT_TRUE(y->is_leaf());
  }
  auto y = Mul(x, x);
  EXPECT_FALSE(y->is_leaf());
}

TEST(BackwardTest, ConstantsGetNoGradient) {
  auto x = Param(Tensor({2}, {1, 2}));
  auto c = Constant(Tensor({2}, {3, 4}));
  Backward(SumAll(Mul(x, c)));
  EXPECT_TRUE(rtgcn::AllClose(x->grad, c->value));
  EXPECT_FALSE(c->grad.defined());
}

// ---------------------------------------------------------------------------
// Gradient checks for each op
// ---------------------------------------------------------------------------

class GradCheckTest : public ::testing::Test {
 protected:
  Rng rng_{99};

  VarPtr RandParam(Shape shape, float lo = -1.0f, float hi = 1.0f) {
    return Param(RandomUniform(std::move(shape), lo, hi, &rng_));
  }
};

TEST_F(GradCheckTest, AddSubWithBroadcast) {
  auto a = RandParam({3, 4});
  auto b = RandParam({4});
  EXPECT_TRUE(GradCheck(
      [](const std::vector<VarPtr>& in) {
        return SumAll(Square(Add(in[0], in[1])));
      },
      {a, b}));
  EXPECT_TRUE(GradCheck(
      [](const std::vector<VarPtr>& in) {
        return SumAll(Square(Sub(in[0], in[1])));
      },
      {a, b}));
}

TEST_F(GradCheckTest, MulDiv) {
  auto a = RandParam({2, 3});
  auto b = RandParam({2, 3}, 0.5f, 2.0f);  // away from zero for Div
  EXPECT_TRUE(GradCheck(
      [](const std::vector<VarPtr>& in) { return SumAll(Mul(in[0], in[1])); },
      {a, b}));
  EXPECT_TRUE(GradCheck(
      [](const std::vector<VarPtr>& in) { return SumAll(Div(in[0], in[1])); },
      {a, b}));
}

TEST_F(GradCheckTest, MatMul) {
  auto a = RandParam({3, 4});
  auto b = RandParam({4, 2});
  EXPECT_TRUE(GradCheck(
      [](const std::vector<VarPtr>& in) {
        return SumAll(Square(MatMul(in[0], in[1])));
      },
      {a, b}));
}

TEST_F(GradCheckTest, BatchMatMulPerBatch) {
  auto a = RandParam({2, 3, 4});
  auto b = RandParam({2, 4, 2});
  EXPECT_TRUE(GradCheck(
      [](const std::vector<VarPtr>& in) {
        return SumAll(Square(BatchMatMul(in[0], in[1])));
      },
      {a, b}));
}

TEST_F(GradCheckTest, BatchMatMulSharedRhs) {
  auto a = RandParam({3, 2, 4});
  auto b = RandParam({4, 2});
  EXPECT_TRUE(GradCheck(
      [](const std::vector<VarPtr>& in) {
        return SumAll(Square(BatchMatMul(in[0], in[1])));
      },
      {a, b}));
}

TEST_F(GradCheckTest, UnaryOps) {
  auto x = RandParam({2, 3}, 0.2f, 1.5f);  // positive domain for log/sqrt
  for (auto fn : {+[](const VarPtr& v) { return Sigmoid(v); },
                  +[](const VarPtr& v) { return Tanh(v); },
                  +[](const VarPtr& v) { return Exp(v); },
                  +[](const VarPtr& v) { return Log(v); },
                  +[](const VarPtr& v) { return Sqrt(v); },
                  +[](const VarPtr& v) { return Square(v); },
                  +[](const VarPtr& v) { return Neg(v); }}) {
    EXPECT_TRUE(GradCheck(
        [fn](const std::vector<VarPtr>& in) { return SumAll(fn(in[0])); },
        {x}));
  }
}

TEST_F(GradCheckTest, ReluAwayFromKink) {
  auto x = Param(Tensor({4}, {-1.0f, -0.3f, 0.4f, 1.2f}));
  EXPECT_TRUE(GradCheck(
      [](const std::vector<VarPtr>& in) {
        return SumAll(Square(Relu(in[0])));
      },
      {x}));
}

TEST_F(GradCheckTest, SoftmaxAndReductions) {
  auto x = RandParam({3, 4});
  EXPECT_TRUE(GradCheck(
      [](const std::vector<VarPtr>& in) {
        return SumAll(Square(Softmax(in[0], 1)));
      },
      {x}));
  EXPECT_TRUE(GradCheck(
      [](const std::vector<VarPtr>& in) {
        return SumAll(Square(Mean(in[0], 0)));
      },
      {x}));
  EXPECT_TRUE(GradCheck(
      [](const std::vector<VarPtr>& in) {
        return MeanAll(Square(Sum(in[0], 1, true)));
      },
      {x}));
}

TEST_F(GradCheckTest, SliceConcatReshape) {
  auto x = RandParam({4, 3});
  EXPECT_TRUE(GradCheck(
      [](const std::vector<VarPtr>& in) {
        auto a = SliceOp(in[0], 0, 0, 2);
        auto b = SliceOp(in[0], 0, 2, 4);
        auto cat = ConcatOp({b, a}, 0);  // swapped halves
        return SumAll(Square(Reshape(cat, {2, 6})));
      },
      {x}));
}

TEST_F(GradCheckTest, PermuteTransposeDownsample) {
  auto x = RandParam({4, 2, 3});
  EXPECT_TRUE(GradCheck(
      [](const std::vector<VarPtr>& in) {
        return SumAll(Square(Permute(in[0], {2, 0, 1})));
      },
      {x}));
  EXPECT_TRUE(GradCheck(
      [](const std::vector<VarPtr>& in) {
        return SumAll(Square(Downsample(in[0], 0, 2, 1)));
      },
      {x}));
  auto m = RandParam({3, 5});
  EXPECT_TRUE(GradCheck(
      [](const std::vector<VarPtr>& in) {
        return SumAll(Square(Transpose(in[0])));
      },
      {m}));
}

TEST(DownsampleTest, ForwardValues) {
  auto x = Constant(Tensor({5, 1}, {0, 1, 2, 3, 4}));
  auto y = Downsample(x, 0, 2, 0);
  EXPECT_TRUE(rtgcn::AllClose(y->value, Tensor({3, 1}, {0, 2, 4})));
  auto z = Downsample(x, 0, 2, 1);
  EXPECT_TRUE(rtgcn::AllClose(z->value, Tensor({2, 1}, {1, 3})));
}

TEST(DropoutTest, EvalModeIsIdentity) {
  Rng rng(1);
  auto x = Constant(Tensor::Ones({10, 10}));
  auto y = Dropout(x, 0.5f, /*training=*/false, &rng);
  EXPECT_TRUE(rtgcn::AllClose(y->value, x->value));
}

TEST(DropoutTest, TrainingScalesAndZeroes) {
  Rng rng(2);
  auto x = Constant(Tensor::Ones({100, 100}));
  auto y = Dropout(x, 0.5f, /*training=*/true, &rng);
  int64_t zeros = 0;
  for (int64_t i = 0; i < y->value.numel(); ++i) {
    const float v = y->value.data()[i];
    EXPECT_TRUE(v == 0.0f || std::fabs(v - 2.0f) < 1e-6);
    if (v == 0.0f) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.5, 0.05);
}

TEST(DropoutTest, SpatialDropsWholeChannels) {
  Rng rng(3);
  auto x = Constant(Tensor::Ones({8, 4, 16}));
  auto y = Dropout(x, 0.5f, true, &rng, /*spatial_axis=*/2);
  // Each channel c is either all-zero or all-scaled across (T, N).
  for (int64_t c = 0; c < 16; ++c) {
    const float first = y->value.at({0, 0, c});
    for (int64_t t = 0; t < 8; ++t) {
      for (int64_t n = 0; n < 4; ++n) {
        EXPECT_FLOAT_EQ(y->value.at({t, n, c}), first);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Optimizers
// ---------------------------------------------------------------------------

TEST(OptimizerTest, SgdConvergesOnQuadratic) {
  auto x = Param(Tensor({2}, {5, -3}));
  Sgd opt({x}, 0.1f);
  for (int i = 0; i < 200; ++i) {
    opt.ZeroGrad();
    Backward(SumAll(Square(x)));
    opt.Step();
  }
  EXPECT_NEAR(rtgcn::Norm(x->value), 0.0f, 1e-3);
}

TEST(OptimizerTest, AdamConvergesOnQuadraticWithOffset) {
  // minimize ||x - target||^2
  auto x = Param(Tensor({3}, {0, 0, 0}));
  Tensor target({3}, {1, -2, 0.5});
  Adam opt({x}, 0.05f);
  for (int i = 0; i < 400; ++i) {
    opt.ZeroGrad();
    Backward(SumAll(Square(Sub(x, Constant(target)))));
    opt.Step();
  }
  EXPECT_TRUE(rtgcn::AllClose(x->value, target, 1e-2f, 1e-2f));
}

TEST(OptimizerTest, WeightDecayShrinksWeights) {
  auto x = Param(Tensor({1}, {1.0f}));
  Adam opt({x}, 0.01f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/1.0f);
  for (int i = 0; i < 100; ++i) {
    opt.ZeroGrad();
    // Loss gradient is zero; only decay acts.
    x->AccumulateGrad(Tensor::Zeros({1}));
    opt.Step();
  }
  EXPECT_LT(std::fabs(x->value.data()[0]), 1.0f);
}

TEST(OptimizerTest, ClipGradNormBoundsGlobalNorm) {
  auto a = Param(Tensor({2}, {30, 40}));
  auto b = Param(Tensor({1}, {0}));
  Sgd opt({a, b}, 1.0f);
  a->AccumulateGrad(Tensor({2}, {30, 40}));  // norm 50
  b->AccumulateGrad(Tensor({1}, {0}));
  opt.ClipGradNorm(5.0f);
  EXPECT_NEAR(rtgcn::Norm(a->grad), 5.0f, 1e-4);
}

TEST(OptimizerTest, ZeroGradClears) {
  auto x = Param(Tensor({2}, {1, 1}));
  Adam opt({x});
  x->AccumulateGrad(Tensor::Ones({2}));
  opt.ZeroGrad();
  EXPECT_FALSE(x->grad.defined());
}

// Regression test: GradMode must be thread-local. A serving worker holding
// NoGradGuard for a forward-only pass must not disable taping on a training
// thread running concurrently (and vice versa) — with a process-global flag
// this test races and the main thread's tape silently disappears.
TEST(GradModeTest, NoGradGuardOnOneThreadDoesNotAffectAnother) {
  std::promise<void> guard_held;
  std::promise<void> main_done;
  std::atomic<bool> other_saw_disabled{false};
  std::atomic<bool> other_built_tape{true};

  std::thread server_worker([&] {
    NoGradGuard no_grad;
    other_saw_disabled.store(!GradMode::enabled());
    // An op on this thread must not build a tape...
    auto a = Param(Tensor::Ones({2}));
    auto b = Mul(a, a);
    other_built_tape.store(b->backward_fn != nullptr || !b->parents.empty());
    guard_held.set_value();
    // ... and the guard stays in force while the main thread tapes.
    main_done.get_future().wait();
  });

  guard_held.get_future().wait();
  // The other thread's NoGradGuard is active right now; taping here must
  // still work.
  EXPECT_TRUE(GradMode::enabled());
  auto x = Param(Tensor::Ones({2}));
  auto y = Mul(x, x);
  EXPECT_TRUE(y->backward_fn != nullptr);
  EXPECT_FALSE(y->parents.empty());
  Backward(y);
  EXPECT_TRUE(x->grad.defined());
  main_done.set_value();
  server_worker.join();

  EXPECT_TRUE(other_saw_disabled.load());
  EXPECT_FALSE(other_built_tape.load());
  // Guard released with the thread; this thread was never affected.
  EXPECT_TRUE(GradMode::enabled());
}

}  // namespace
}  // namespace rtgcn::ag
