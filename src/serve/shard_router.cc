#include "serve/shard_router.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "obs/clock.h"
#include "obs/trace.h"

namespace rtgcn::serve {

namespace {

constexpr auto kNoDeadline = std::chrono::steady_clock::time_point::max();

// Same (version, day) packing as InferenceServer's cache (collision-free:
// versions < 2^40, day indices << 2^20).
uint64_t CacheKey(int64_t version, int64_t day) {
  return (static_cast<uint64_t>(version) << 20) | static_cast<uint64_t>(day);
}

// SplitMix64: cheap, well-mixed 64-bit hash for ring placement.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Canonical rank of `stock` within `scores`: number of stocks ordered
// before it under score-descending with ties by id ascending — exactly the
// stable_sort order every reply path uses.
int64_t RankOf(const std::vector<float>& scores, int64_t stock) {
  const float s = scores[static_cast<size_t>(stock)];
  int64_t rank = 0;
  for (int64_t i = 0; i < static_cast<int64_t>(scores.size()); ++i) {
    if (scores[static_cast<size_t>(i)] > s ||
        (scores[static_cast<size_t>(i)] == s && i < stock)) {
      ++rank;
    }
  }
  return rank;
}

}  // namespace

ShardRouter::ScoreFn ShardRouter::DatasetScoreFn(
    const market::WindowDataset* data) {
  return [data](const ModelSnapshot& snapshot,
                int64_t day) -> Result<std::vector<float>> {
    if (day < data->first_day() || day > data->last_day()) {
      return Status::InvalidArgument("day ", day,
                                     " outside the valid range [",
                                     data->first_day(), ", ",
                                     data->last_day(), "]");
    }
    obs::Span span("serve.forward", "serve");
    const Tensor scores = snapshot.Score(data->Features(day));
    return std::vector<float>(scores.data(), scores.data() + scores.numel());
  };
}

ShardRouter::ShardRouter(ScoreFn score_fn, int64_t num_stocks,
                         ModelRegistry* registry, Options options,
                         Metrics* metrics)
    : score_fn_(std::move(score_fn)),
      num_stocks_(num_stocks),
      registry_(registry),
      options_(options),
      metrics_(metrics),
      admission_({std::max<int64_t>(options.max_queue, 1), options.admission,
                  options.admission_timeout_ms, "requests"}) {
  RTGCN_CHECK(score_fn_ != nullptr);
  RTGCN_CHECK(registry_ != nullptr);
  RTGCN_CHECK(num_stocks_ > 0);
  options_.num_shards = std::max<int64_t>(options_.num_shards, 1);
  options_.virtual_nodes = std::max<int64_t>(options_.virtual_nodes, 1);
  options_.max_batch = std::max<int64_t>(options_.max_batch, 1);
  options_.batch_timeout_us = std::max<int64_t>(options_.batch_timeout_us, 0);
  options_.cache_capacity = std::max<int64_t>(options_.cache_capacity, 1);

  // Consistent-hash ring: virtual_nodes points per shard, a stock is owned
  // by the first ring point clockwise of its hash. Ties (hash collisions)
  // break by shard id so the ring is deterministic.
  std::vector<std::pair<uint64_t, int64_t>> ring;
  ring.reserve(static_cast<size_t>(options_.num_shards *
                                   options_.virtual_nodes));
  for (int64_t s = 0; s < options_.num_shards; ++s) {
    for (int64_t v = 0; v < options_.virtual_nodes; ++v) {
      ring.emplace_back(Mix64(Mix64(static_cast<uint64_t>(s) + 1) ^
                              static_cast<uint64_t>(v)),
                        s);
    }
  }
  std::sort(ring.begin(), ring.end());
  owner_.resize(static_cast<size_t>(num_stocks_));
  owned_index_.resize(static_cast<size_t>(num_stocks_));
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int64_t s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  for (int64_t stock = 0; stock < num_stocks_; ++stock) {
    const uint64_t h = Mix64(static_cast<uint64_t>(stock));
    auto it = std::lower_bound(ring.begin(), ring.end(),
                               std::make_pair(h, int64_t{0}));
    if (it == ring.end()) it = ring.begin();  // wrap around the ring
    const int64_t s = it->second;
    owner_[static_cast<size_t>(stock)] = s;
    owned_index_[static_cast<size_t>(stock)] =
        static_cast<int64_t>(shards_[static_cast<size_t>(s)]->owned.size());
    shards_[static_cast<size_t>(s)]->owned.push_back(stock);
  }
}

ShardRouter::~ShardRouter() { Stop(); }

Status ShardRouter::Start() {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (running_) return Status::OK();
  running_ = true;
  draining_ = false;
  admission_.Reopen();
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> slock(shard->mu);
      shard->draining = false;
    }
    shard->worker = std::thread([this, s = shard.get()] { WorkerLoop(s); });
  }
  return Status::OK();
}

void ShardRouter::Stop() {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!running_) return;
    draining_ = true;
  }
  admission_.CloseForDrain();
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> slock(shard->mu);
      shard->draining = true;
    }
    shard->cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  running_ = false;
}

int64_t ShardRouter::OwnerShard(int64_t stock) const {
  RTGCN_CHECK(stock >= 0 && stock < num_stocks_);
  return owner_[static_cast<size_t>(stock)];
}

int64_t ShardRouter::QueueDepth() {
  int64_t depth = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    depth += static_cast<int64_t>(shard->queue.size());
  }
  return depth;
}

HealthState ShardRouter::HealthLocked(bool draining) {
  HealthState state;
  if (draining) {
    state = HealthState::kDraining;
  } else if (registry_->Current() == nullptr) {
    state = HealthState::kDegraded;
  } else if (options_.degraded_failure_threshold > 0 &&
             registry_->consecutive_reload_failures() >=
                 options_.degraded_failure_threshold) {
    state = HealthState::kDegraded;
  } else {
    state = HealthState::kServing;
  }
  std::lock_guard<std::mutex> lock(health_mu_);
  const uint64_t now_us = obs::NowMicros();
  if (last_health_us_ != 0 && was_degraded_) {
    degraded_secs_ +=
        static_cast<double>(obs::ElapsedMicrosSince(last_health_us_)) * 1e-6;
  }
  last_health_us_ = now_us;
  was_degraded_ = (state == HealthState::kDegraded);
  if (metrics_) metrics_->degraded_seconds.Set(degraded_secs_);
  return state;
}

HealthState ShardRouter::Health() {
  bool draining;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    draining = !running_ || draining_;
  }
  return HealthLocked(draining);
}

std::string ShardRouter::HealthLine() {
  bool draining;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    draining = !running_ || draining_;
  }
  const HealthState state = HealthLocked(draining);
  std::ostringstream out;
  out << HealthStateName(state) << " version=" << registry_->CurrentVersion()
      << " reload_failures=" << registry_->consecutive_reload_failures()
      << " queue=" << QueueDepth() << " shards=" << options_.num_shards;
  return out.str();
}

int64_t ShardRouter::CurrentVersion() const {
  return registry_->CurrentVersion();
}

void ShardRouter::RememberRank(int64_t day, RankReply reply) {
  std::lock_guard<std::mutex> lock(stale_mu_);
  auto [it, inserted] = last_by_day_.try_emplace(day);
  it->second = std::move(reply);
  if (inserted) {
    stale_fifo_.push_back(day);
    while (static_cast<int64_t>(stale_fifo_.size()) >
           options_.cache_capacity) {
      last_by_day_.erase(stale_fifo_.front());
      stale_fifo_.pop_front();
    }
  }
}

bool ShardRouter::LastRankFor(int64_t day, RankReply* out) {
  std::lock_guard<std::mutex> lock(stale_mu_);
  auto it = last_by_day_.find(day);
  if (it == last_by_day_.end()) return false;
  *out = it->second;
  out->stale = true;
  return true;
}

std::future<Result<ShardRouter::SlicePtr>> ShardRouter::SubmitToShard(
    Shard* shard, int64_t day,
    const std::shared_ptr<const ModelSnapshot>& snapshot,
    std::chrono::steady_clock::time_point deadline) {
  Pending pending;
  pending.day = day;
  pending.snapshot = snapshot;
  pending.enqueue = std::chrono::steady_clock::now();
  pending.deadline = deadline;
  std::future<Result<SlicePtr>> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (shard->draining) {
      pending.promise.set_value(
          Status::Unavailable("draining: server is stopping"));
      return future;
    }
    shard->queue.push_back(std::move(pending));
  }
  shard->cv.notify_one();
  return future;
}

Result<RankReply> ShardRouter::ScatterGather(
    int64_t day, const std::shared_ptr<const ModelSnapshot>& snapshot,
    std::chrono::steady_clock::time_point deadline, bool degraded) {
  obs::Span span("serve.scatter_gather", "serve");
  // Scatter: every shard task carries the SAME pinned snapshot, so the
  // merged reply is one version by construction, reloads notwithstanding.
  std::vector<std::future<Result<SlicePtr>>> futures;
  futures.reserve(shards_.size());
  for (auto& shard : shards_) {
    futures.push_back(SubmitToShard(shard.get(), day, snapshot, deadline));
  }
  // Gather every future before acting on errors — a promise must be
  // consumed even when a sibling shard already failed.
  std::vector<Result<SlicePtr>> slices;
  slices.reserve(futures.size());
  for (auto& f : futures) slices.push_back(f.get());
  for (const auto& s : slices) {
    RTGCN_RETURN_NOT_OK(s.status());
  }
  RankReply reply;
  reply.model_version = snapshot->version();
  reply.day = day;
  reply.stale = degraded;
  reply.scores.assign(static_cast<size_t>(num_stocks_), 0.0f);
  for (size_t k = 0; k < shards_.size(); ++k) {
    const Shard& shard = *shards_[k];
    const SlicePtr& slice = slices[k].ValueOrDie();
    for (size_t i = 0; i < shard.owned.size(); ++i) {
      reply.scores[static_cast<size_t>(shard.owned[i])] = slice->scores[i];
    }
  }
  RememberRank(day, reply);
  return reply;
}

Result<RankReply> ShardRouter::Rank(int64_t day, RequestOptions request) {
  obs::Span span("serve.rank", "serve");
  if (metrics_) metrics_->requests.fetch_add(1, std::memory_order_relaxed);
  const auto now = std::chrono::steady_clock::now();
  const auto deadline =
      request.deadline_ms > 0
          ? now + std::chrono::milliseconds(request.deadline_ms)
          : kNoDeadline;
  const Status admitted = admission_.Admit(deadline);
  if (!admitted.ok()) {
    if (metrics_) {
      (admitted.code() == StatusCode::kDeadlineExceeded ? metrics_->expired
                                                        : metrics_->shed)
          .fetch_add(1, std::memory_order_relaxed);
    }
    return admitted;
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!running_ || draining_) {
      admission_.Release();
      if (metrics_) metrics_->shed.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(running_ ? "draining: server is stopping"
                                          : "draining: server is not running");
    }
  }
  const uint64_t enqueue_us = obs::NowMicros();
  const std::shared_ptr<const ModelSnapshot> snapshot = registry_->Current();
  Result<RankReply> result = Status::Internal("unset");
  if (!snapshot) {
    RankReply stale;
    if (LastRankFor(day, &stale)) {
      result = std::move(stale);
    } else {
      result = Status::NotFound("no model version published yet");
    }
  } else {
    const bool degraded = (Health() == HealthState::kDegraded);
    result = ScatterGather(day, snapshot, deadline, degraded);
  }
  admission_.Release();
  if (metrics_) {
    if (result.ok()) {
      metrics_->latency.Record(obs::ElapsedMicrosSince(enqueue_us));
      metrics_->responses_ok.fetch_add(1, std::memory_order_relaxed);
      if (result.ValueOrDie().stale) {
        metrics_->stale_served.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
      metrics_->expired.fetch_add(1, std::memory_order_relaxed);
    } else {
      metrics_->latency.Record(obs::ElapsedMicrosSince(enqueue_us));
      metrics_->responses_error.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return result;
}

Result<ScoreReply> ShardRouter::Score(int64_t day, int64_t stock,
                                      RequestOptions request) {
  obs::Span span("serve.score", "serve");
  if (stock < 0 || stock >= num_stocks_) {
    if (metrics_) {
      metrics_->requests.fetch_add(1, std::memory_order_relaxed);
      metrics_->responses_error.fetch_add(1, std::memory_order_relaxed);
    }
    return Status::InvalidArgument("stock ", stock, " out of range [0, ",
                                   num_stocks_, ")");
  }
  if (metrics_) metrics_->requests.fetch_add(1, std::memory_order_relaxed);
  const auto now = std::chrono::steady_clock::now();
  const auto deadline =
      request.deadline_ms > 0
          ? now + std::chrono::milliseconds(request.deadline_ms)
          : kNoDeadline;
  const Status admitted = admission_.Admit(deadline);
  if (!admitted.ok()) {
    if (metrics_) {
      (admitted.code() == StatusCode::kDeadlineExceeded ? metrics_->expired
                                                        : metrics_->shed)
          .fetch_add(1, std::memory_order_relaxed);
    }
    return admitted;
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!running_ || draining_) {
      admission_.Release();
      if (metrics_) metrics_->shed.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(running_ ? "draining: server is stopping"
                                          : "draining: server is not running");
    }
  }
  const uint64_t enqueue_us = obs::NowMicros();
  const std::shared_ptr<const ModelSnapshot> snapshot = registry_->Current();
  Result<ScoreReply> result = Status::Internal("unset");
  if (!snapshot) {
    // Degraded fallback: the last merged scores for the day, any version.
    RankReply stale;
    if (LastRankFor(day, &stale)) {
      ScoreReply reply;
      reply.model_version = stale.model_version;
      reply.score = stale.scores[static_cast<size_t>(stock)];
      reply.rank = RankOf(stale.scores, stock);
      reply.num_stocks = num_stocks_;
      reply.stale = true;
      result = reply;
    } else {
      result = Status::NotFound("no model version published yet");
    }
  } else {
    const bool degraded = (Health() == HealthState::kDegraded);
    // Point read: only the owner shard is consulted.
    Shard* shard =
        shards_[static_cast<size_t>(owner_[static_cast<size_t>(stock)])]
            .get();
    auto slice_result = SubmitToShard(shard, day, snapshot, deadline).get();
    if (slice_result.ok()) {
      const SlicePtr& slice = slice_result.ValueOrDie();
      const size_t idx =
          static_cast<size_t>(owned_index_[static_cast<size_t>(stock)]);
      ScoreReply reply;
      reply.model_version = snapshot->version();
      reply.score = slice->scores[idx];
      reply.rank = slice->ranks[idx];
      reply.num_stocks = num_stocks_;
      reply.stale = degraded;
      result = reply;
    } else {
      result = slice_result.status();
    }
  }
  admission_.Release();
  if (metrics_) {
    if (result.ok()) {
      metrics_->latency.Record(obs::ElapsedMicrosSince(enqueue_us));
      metrics_->responses_ok.fetch_add(1, std::memory_order_relaxed);
      if (result.ValueOrDie().stale) {
        metrics_->stale_served.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
      metrics_->expired.fetch_add(1, std::memory_order_relaxed);
    } else {
      metrics_->latency.Record(obs::ElapsedMicrosSince(enqueue_us));
      metrics_->responses_error.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return result;
}

bool ShardRouter::TryRankCached(int64_t day, RankReply* out) {
  if (!options_.enable_cache) return false;
  const std::shared_ptr<const ModelSnapshot> snapshot = registry_->Current();
  if (!snapshot) return false;
  if (Health() != HealthState::kServing) return false;
  const uint64_t key = CacheKey(snapshot->version(), day);
  out->scores.assign(static_cast<size_t>(num_stocks_), 0.0f);
  // All K owned slices must be cached; one miss sends the request down the
  // blocking scatter-gather path.
  for (auto& shard : shards_) {
    SlicePtr slice;
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      auto it = shard->cache.find(key);
      if (it == shard->cache.end()) return false;
      slice = it->second;
    }
    for (size_t i = 0; i < shard->owned.size(); ++i) {
      out->scores[static_cast<size_t>(shard->owned[i])] = slice->scores[i];
    }
  }
  if (metrics_) metrics_->cache_hits.fetch_add(1, std::memory_order_relaxed);
  out->model_version = snapshot->version();
  out->day = day;
  out->stale = false;
  return true;
}

bool ShardRouter::TryScoreCached(int64_t day, int64_t stock,
                                 ScoreReply* out) {
  if (!options_.enable_cache) return false;
  if (stock < 0 || stock >= num_stocks_) return false;
  const std::shared_ptr<const ModelSnapshot> snapshot = registry_->Current();
  if (!snapshot) return false;
  if (Health() != HealthState::kServing) return false;
  Shard* shard =
      shards_[static_cast<size_t>(owner_[static_cast<size_t>(stock)])].get();
  SlicePtr slice;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    auto it = shard->cache.find(CacheKey(snapshot->version(), day));
    if (it == shard->cache.end()) return false;
    slice = it->second;
  }
  if (metrics_) metrics_->cache_hits.fetch_add(1, std::memory_order_relaxed);
  const size_t idx =
      static_cast<size_t>(owned_index_[static_cast<size_t>(stock)]);
  out->model_version = snapshot->version();
  out->score = slice->scores[idx];
  out->rank = slice->ranks[idx];
  out->num_stocks = num_stocks_;
  out->stale = false;
  return true;
}

void ShardRouter::WorkerLoop(Shard* shard) {
  std::unique_lock<std::mutex> lock(shard->mu);
  while (true) {
    shard->cv.wait(
        lock, [shard] { return shard->draining || !shard->queue.empty(); });
    if (shard->draining && shard->queue.empty()) break;
    // Micro-batch window per shard, with deadline-aware wake (same policy
    // as the single-process batcher).
    if (options_.batch_timeout_us > 0 && !shard->draining &&
        static_cast<int64_t>(shard->queue.size()) < options_.max_batch) {
      auto wake = shard->queue.front().enqueue +
                  std::chrono::microseconds(options_.batch_timeout_us);
      for (const Pending& p : shard->queue) wake = std::min(wake, p.deadline);
      shard->cv.wait_until(lock, wake, [this, shard] {
        return shard->draining ||
               static_cast<int64_t>(shard->queue.size()) >=
                   options_.max_batch;
      });
    }
    std::vector<Pending> dead;
    std::vector<Pending> batch;
    {
      const auto now = std::chrono::steady_clock::now();
      for (auto it = shard->queue.begin(); it != shard->queue.end();) {
        if (it->deadline <= now) {
          dead.push_back(std::move(*it));
          it = shard->queue.erase(it);
        } else {
          ++it;
        }
      }
      const int64_t take = std::min<int64_t>(
          options_.max_batch, static_cast<int64_t>(shard->queue.size()));
      batch.reserve(static_cast<size_t>(take));
      for (int64_t i = 0; i < take; ++i) {
        batch.push_back(std::move(shard->queue.front()));
        shard->queue.pop_front();
      }
    }
    lock.unlock();
    for (Pending& p : dead) {
      // The router attributes the expiry to the whole request; the shard
      // only reports it.
      p.promise.set_value(
          Status::DeadlineExceeded("deadline exceeded in shard queue"));
    }
    if (!batch.empty()) ExecuteShardBatch(shard, std::move(batch));
    lock.lock();
  }
}

Result<ShardRouter::SlicePtr> ShardRouter::SliceFor(
    Shard* shard, const std::shared_ptr<const ModelSnapshot>& snap,
    int64_t day) {
  const uint64_t key = CacheKey(snap->version(), day);
  if (options_.enable_cache) {
    std::lock_guard<std::mutex> lock(shard->mu);
    auto it = shard->cache.find(key);
    if (it != shard->cache.end()) {
      if (metrics_) {
        metrics_->cache_hits.fetch_add(1, std::memory_order_relaxed);
      }
      return it->second;
    }
  }
  if (metrics_) {
    metrics_->cache_misses.fetch_add(1, std::memory_order_relaxed);
    metrics_->forwards.fetch_add(1, std::memory_order_relaxed);
  }
  // Relational model: the full universe must be scored to know any one
  // stock's score (graph propagation) — compute it all, keep our slice.
  RTGCN_ASSIGN_OR_RETURN(const std::vector<float> scores,
                         score_fn_(*snap, day));
  if (static_cast<int64_t>(scores.size()) != num_stocks_) {
    return Status::Internal("score fn returned ", scores.size(),
                            " scores, want ", num_stocks_);
  }
  // Global ranks before slicing (canonical order: score desc, id asc).
  std::vector<int64_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return scores[static_cast<size_t>(a)] > scores[static_cast<size_t>(b)];
  });
  std::vector<int64_t> ranks(scores.size());
  for (int64_t r = 0; r < static_cast<int64_t>(order.size()); ++r) {
    ranks[static_cast<size_t>(order[static_cast<size_t>(r)])] = r;
  }
  auto slice = std::make_shared<Slice>();
  slice->version = snap->version();
  slice->scores.reserve(shard->owned.size());
  slice->ranks.reserve(shard->owned.size());
  for (int64_t stock : shard->owned) {
    slice->scores.push_back(scores[static_cast<size_t>(stock)]);
    slice->ranks.push_back(ranks[static_cast<size_t>(stock)]);
  }
  if (options_.enable_cache) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (shard->cache.emplace(key, slice).second) {
      shard->fifo.push_back(key);
      while (static_cast<int64_t>(shard->fifo.size()) >
             options_.cache_capacity) {
        shard->cache.erase(shard->fifo.front());
        shard->fifo.pop_front();
      }
    }
  }
  return SlicePtr(std::move(slice));
}

void ShardRouter::ExecuteShardBatch(Shard* shard,
                                    std::vector<Pending> batch) {
  obs::Span span("serve.shard_batch", "serve");
  if (metrics_) {
    metrics_->batches.fetch_add(1, std::memory_order_relaxed);
    metrics_->batch_size.Record(static_cast<int64_t>(batch.size()));
  }
  // Coalesce within the batch: one slice computation per distinct
  // (version, day), even with the cross-batch cache cold.
  std::unordered_map<uint64_t, Result<SlicePtr>> by_key;
  for (Pending& p : batch) {
    const uint64_t key = CacheKey(p.snapshot->version(), p.day);
    auto it = by_key.find(key);
    if (it == by_key.end()) {
      it = by_key.emplace(key, SliceFor(shard, p.snapshot, p.day)).first;
    }
    p.promise.set_value(it->second);
  }
}

}  // namespace rtgcn::serve
