file(REMOVE_RECURSE
  "CMakeFiles/real_data_workflow.dir/real_data_workflow.cpp.o"
  "CMakeFiles/real_data_workflow.dir/real_data_workflow.cpp.o.d"
  "real_data_workflow"
  "real_data_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_data_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
