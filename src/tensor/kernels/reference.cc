// Reference (scalar) kernel backend: the original portable loops. This is
// the ground truth the kernel checker validates every other variant
// against, and the fallback on CPUs without AVX2.
#include <algorithm>
#include <cmath>

#include "tensor/kernels/kernels.h"

namespace rtgcn::kernels {
namespace {

bool AlwaysSupported() { return true; }

void AddRef(const float* a, const float* b, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] + b[i];
}
void SubRef(const float* a, const float* b, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] - b[i];
}
void MulRef(const float* a, const float* b, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] * b[i];
}
void DivRef(const float* a, const float* b, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] / b[i];
}
void MaxRef(const float* a, const float* b, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = std::max(a[i], b[i]);
}
void MinRef(const float* a, const float* b, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = std::min(a[i], b[i]);
}
void AddScalarRef(const float* a, float s, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] + s;
}
void MulScalarRef(const float* a, float s, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] * s;
}
void ReluRef(const float* a, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] > 0 ? a[i] : 0.0f;
}
void LeakyReluRef(const float* a, float slope, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] > 0 ? a[i] : slope * a[i];
}

// C[m,n] += A[m,k] * B[k,n], ikj loop order for cache-friendly access.
// Each output row is produced with the serial accumulation order
// regardless of the [row_lo, row_hi) panel it arrives in.
void MatMulRowsRef(const float* a, const float* b, float* c, int64_t row_lo,
                   int64_t row_hi, int64_t k, int64_t n) {
  for (int64_t i = row_lo; i < row_hi; ++i) {
    float* ci = c + i * n;
    const float* ai = a + i * k;
    for (int64_t p = 0; p < k; ++p) {
      const float aip = ai[p];
      if (aip == 0.0f) continue;  // common for sparse adjacency rows
      const float* bp = b + p * n;
      for (int64_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

// Per-row shift-by-max softmax, matching the composed Max/Sub/Exp/Sum/Div
// path element for element (serial max scan, serial sum).
void SoftmaxRowsRef(const float* in, float* out, int64_t row_lo,
                    int64_t row_hi, int64_t cols) {
  for (int64_t r = row_lo; r < row_hi; ++r) {
    const float* x = in + r * cols;
    float* y = out + r * cols;
    float mx = x[0];
    for (int64_t j = 1; j < cols; ++j) mx = std::max(mx, x[j]);
    float sum = 0.0f;
    for (int64_t j = 0; j < cols; ++j) {
      y[j] = std::exp(x[j] - mx);
      sum += y[j];
    }
    for (int64_t j = 0; j < cols; ++j) y[j] /= sum;
  }
}

// Naive row scan; writes are column-strided (po[j*m + i]), which is what
// the blocked avx2 variant exists to avoid.
void TransposeRowsRef(const float* in, float* out, int64_t row_lo,
                      int64_t row_hi, int64_t m, int64_t n) {
  for (int64_t i = row_lo; i < row_hi; ++i) {
    for (int64_t j = 0; j < n; ++j) out[j * m + i] = in[i * n + j];
  }
}

const KernelSet kReferenceSet = {
    /*name=*/"reference",
    /*supported=*/AlwaysSupported,
    /*add=*/AddRef,
    /*sub=*/SubRef,
    /*mul=*/MulRef,
    /*div=*/DivRef,
    /*vmax=*/MaxRef,
    /*vmin=*/MinRef,
    /*add_scalar=*/AddScalarRef,
    /*mul_scalar=*/MulScalarRef,
    /*relu=*/ReluRef,
    /*leaky_relu=*/LeakyReluRef,
    /*matmul_rows=*/MatMulRowsRef,
    /*softmax_rows=*/SoftmaxRowsRef,
    /*transpose_rows=*/TransposeRowsRef,
    /*matmul_span=*/"tensor.MatMul",
    /*batch_matmul_span=*/"tensor.BatchMatMul",
    /*softmax_span=*/"tensor.Softmax",
};

}  // namespace

const KernelSet& Reference() { return kReferenceSet; }

}  // namespace rtgcn::kernels
