// Hot checkpoint reload: polls a checkpoint directory and atomically
// publishes the newest loadable checkpoint as an immutable ModelSnapshot.
//
// The swap is RCU-style: Current() is a lock-free atomic load of a
// std::shared_ptr, so queries in flight keep the snapshot they grabbed
// while a newer one is promoted; the superseded model is freed when its
// last query finishes. Promotion reuses the checkpoint subsystem's
// resume-from-newest-loadable discipline (harness/checkpoint.h): candidate
// checkpoints newer than the served version are tried newest-first, and a
// corrupt or truncated file is skipped (and counted in Metrics) instead of
// taking the server down — the previous snapshot keeps serving.
#ifndef RTGCN_SERVE_REGISTRY_H_
#define RTGCN_SERVE_REGISTRY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "harness/checkpoint.h"
#include "serve/metrics.h"
#include "serve/snapshot.h"

namespace rtgcn::serve {

/// \brief Publishes ModelSnapshots from a directory of numbered checkpoints
/// (the ckpt-<epoch>.rtgcn layout harness::CheckpointManager writes).
class ModelRegistry {
 public:
  struct Options {
    std::string dir;                    ///< checkpoint directory to watch
    int64_t reload_interval_ms = 1000;  ///< poll period of the reload thread
  };

  /// `metrics` may be null (reload accounting is then dropped).
  ModelRegistry(Options options, ServableFactory factory, Metrics* metrics);
  ~ModelRegistry();

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Performs one synchronous poll (so a server never starts without trying
  /// to load a model) and starts the background reload thread. Returns
  /// NotFound when the directory holds no loadable checkpoint yet — the
  /// poller keeps watching and will promote the first one that appears.
  Status Start();

  /// Stops the reload thread. Published snapshots stay valid (shared_ptr).
  void Stop();

  /// Currently served snapshot; null until a checkpoint has been promoted.
  /// Callers pin the version for the whole query by holding the returned
  /// shared_ptr — a concurrent promotion swaps the pointer but never
  /// touches a pinned snapshot, which is freed when its last query ends.
  std::shared_ptr<const ModelSnapshot> Current() const {
    std::lock_guard<std::mutex> lock(current_mu_);
    return current_;
  }

  /// Version of the current snapshot, -1 when none is published.
  int64_t CurrentVersion() const;

  /// Emergency ops control: withdraws the published snapshot so queries
  /// fall back to the inference server's stale-score cache (flagged STALE)
  /// instead of a model an operator wants pulled. With a live poll loop
  /// the newest loadable checkpoint on disk is re-promoted at the next
  /// poll — remove the files first to keep the model down.
  void Unpublish();

  /// Reload failures since the last successful promotion. Feeds the
  /// serving health state machine: crossing the server's
  /// degraded_failure_threshold flips health to DEGRADED (the previous
  /// snapshot keeps serving, flagged STALE).
  int64_t consecutive_reload_failures() const {
    return consecutive_failures_.load(std::memory_order_relaxed);
  }

  /// Scans the directory once and promotes the newest loadable checkpoint
  /// whose epoch exceeds the served version, skipping (and counting)
  /// unloadable candidates. Returns true when a new snapshot was published.
  /// Public so tests and manually-driven servers can force a reload.
  bool PollOnce();

  const Options& options() const { return options_; }

 private:
  void PollLoop();

  Options options_;
  ServableFactory factory_;
  Metrics* metrics_;
  harness::CheckpointManager manager_;  ///< naming/listing only, no saves

  // RCU-style publish point: Promote() swaps the shared_ptr under a mutex
  // held for nanoseconds; readers copy it and then run lock-free against
  // their pinned snapshot. (std::atomic<std::shared_ptr> would avoid even
  // that lock, but libstdc++ 12's lock-bit implementation is opaque to
  // ThreadSanitizer and CI runs this code under TSan.)
  mutable std::mutex current_mu_;
  std::shared_ptr<const ModelSnapshot> current_;

  std::atomic<int64_t> consecutive_failures_{0};

  mutable std::mutex reload_mu_;        ///< serializes concurrent PollOnce
  std::mutex poll_mu_;                  ///< guards the poll thread lifecycle
  std::condition_variable poll_cv_;
  bool stop_ = false;
  bool started_ = false;
  std::thread poller_;
};

}  // namespace rtgcn::serve

#endif  // RTGCN_SERVE_REGISTRY_H_
