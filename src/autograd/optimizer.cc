#include "autograd/optimizer.h"

#include <cmath>

namespace rtgcn::ag {

Status Optimizer::LoadState(const OptimizerState& state) {
  if (state.type != "none" || !state.slots.empty()) {
    return Status::InvalidArgument("optimizer has no state; snapshot type '",
                                   state.type, "' with ", state.slots.size(),
                                   " slots");
  }
  return Status::OK();
}

Status Optimizer::CheckState(const OptimizerState& state,
                             const std::string& type,
                             size_t slots_per_param) const {
  if (state.type != type) {
    return Status::InvalidArgument("optimizer state type mismatch: snapshot '",
                                   state.type, "' vs optimizer '", type, "'");
  }
  if (state.slots.size() != slots_per_param * params_.size()) {
    return Status::InvalidArgument(
        "optimizer state has ", state.slots.size(), " slots, expected ",
        slots_per_param * params_.size());
  }
  for (size_t g = 0; g < slots_per_param; ++g) {
    for (size_t i = 0; i < params_.size(); ++i) {
      const Tensor& slot = state.slots[g * params_.size() + i];
      if (slot.shape() != params_[i]->shape()) {
        return Status::InvalidArgument(
            "optimizer slot ", g * params_.size() + i, " shape ",
            ShapeToString(slot.shape()), " vs parameter ",
            ShapeToString(params_[i]->shape()));
      }
    }
  }
  return Status::OK();
}

float Optimizer::ClipGradNorm(float max_norm) {
  double total = 0;
  for (const auto& p : params_) {
    if (!p->grad.defined()) continue;
    const float n = rtgcn::Norm(p->grad);
    total += double(n) * n;
  }
  const double norm = std::sqrt(total);
  if (!std::isfinite(norm)) {
    // NaN fails every comparison (would scale all grads by NaN below) and
    // Inf would zero them; report instead of corrupting the gradients.
    return static_cast<float>(norm);
  }
  if (norm <= max_norm || norm == 0) return static_cast<float>(norm);
  const float scale = static_cast<float>(max_norm / norm);
  for (auto& p : params_) {
    if (p->grad.defined()) p->grad = rtgcn::MulScalar(p->grad, scale);
  }
  return static_cast<float>(norm);
}

Sgd::Sgd(std::vector<VarPtr> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.resize(params_.size());
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p->grad.defined()) continue;
    if (momentum_ > 0) {
      if (!velocity_[i].defined()) velocity_[i] = Tensor::Zeros(p->shape());
      velocity_[i] = rtgcn::Add(rtgcn::MulScalar(velocity_[i], momentum_),
                                p->grad);
      p->value = rtgcn::Sub(p->value, rtgcn::MulScalar(velocity_[i], lr_));
    } else {
      p->value = rtgcn::Sub(p->value, rtgcn::MulScalar(p->grad, lr_));
    }
  }
}

OptimizerState Sgd::State() const {
  OptimizerState state{"sgd", 0, {}};
  state.slots.reserve(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    // Lazily-created velocities are snapshotted as explicit zeros so the
    // slot list always has one entry per parameter.
    state.slots.push_back(velocity_[i].defined()
                              ? velocity_[i].Clone()
                              : Tensor::Zeros(params_[i]->shape()));
  }
  return state;
}

Status Sgd::LoadState(const OptimizerState& state) {
  RTGCN_RETURN_NOT_OK(CheckState(state, "sgd", 1));
  for (size_t i = 0; i < params_.size(); ++i) {
    velocity_[i] = state.slots[i].Clone();
  }
  return Status::OK();
}

Adam::Adam(std::vector<VarPtr> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p->grad.defined()) continue;
    Tensor g = p->grad;
    if (weight_decay_ > 0) {
      g = rtgcn::Add(g, rtgcn::MulScalar(p->value, weight_decay_));
    }
    if (!m_[i].defined()) {
      m_[i] = Tensor::Zeros(p->shape());
      v_[i] = Tensor::Zeros(p->shape());
    }
    // Fused update loop: avoids five temporary tensors per parameter.
    float* pm = m_[i].data();
    float* pv = v_[i].data();
    float* pw = p->value.data();
    const float* pg = g.data();
    const int64_t n = p->numel();
    for (int64_t j = 0; j < n; ++j) {
      pm[j] = beta1_ * pm[j] + (1.0f - beta1_) * pg[j];
      pv[j] = beta2_ * pv[j] + (1.0f - beta2_) * pg[j] * pg[j];
      const float mhat = pm[j] / bc1;
      const float vhat = pv[j] / bc2;
      pw[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

OptimizerState Adam::State() const {
  OptimizerState state{"adam", t_, {}};
  state.slots.reserve(2 * params_.size());
  for (const auto& mom : {&m_, &v_}) {
    for (size_t i = 0; i < params_.size(); ++i) {
      state.slots.push_back((*mom)[i].defined()
                                ? (*mom)[i].Clone()
                                : Tensor::Zeros(params_[i]->shape()));
    }
  }
  return state;
}

Status Adam::LoadState(const OptimizerState& state) {
  RTGCN_RETURN_NOT_OK(CheckState(state, "adam", 2));
  if (state.step < 0) {
    return Status::InvalidArgument("negative Adam step ", state.step);
  }
  t_ = state.step;
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i] = state.slots[i].Clone();
    v_[i] = state.slots[params_.size() + i].Clone();
  }
  return Status::OK();
}

}  // namespace rtgcn::ag
