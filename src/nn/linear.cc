#include "nn/linear.h"

#include "autograd/ops.h"
#include "tensor/init.h"

namespace rtgcn::nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = RegisterParameter(
      "weight",
      XavierUniform({in_features, out_features}, in_features, out_features,
                    rng));
  if (bias) {
    bias_ = RegisterParameter("bias", Tensor::Zeros({out_features}));
  }
}

VarPtr Linear::Forward(const VarPtr& x) const {
  RTGCN_CHECK_GE(x->value.ndim(), 1);
  RTGCN_CHECK_EQ(x->shape().back(), in_features_);
  VarPtr out;
  if (x->value.ndim() == 2) {
    out = ag::MatMul(x, weight_);
  } else {
    // Flatten leading dims, multiply, restore.
    Shape orig = x->shape();
    VarPtr flat = ag::Reshape(x, {-1, in_features_});
    out = ag::MatMul(flat, weight_);
    Shape out_shape = orig;
    out_shape.back() = out_features_;
    out = ag::Reshape(out, std::move(out_shape));
  }
  if (bias_) out = ag::Add(out, bias_);
  return out;
}

}  // namespace rtgcn::nn
