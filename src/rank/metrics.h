// Ranking metrics for stock selection (paper §V-B3): MRR and IRR-k.
#ifndef RTGCN_RANK_METRICS_H_
#define RTGCN_RANK_METRICS_H_

#include <vector>

#include "tensor/tensor.h"

namespace rtgcn::rank {

/// Indices of `scores` sorted descending (ties broken by lower index).
std::vector<int64_t> RankDescending(const Tensor& scores);

/// Indices of the k highest-scoring stocks.
std::vector<int64_t> TopK(const Tensor& scores, int64_t k);

/// Reciprocal rank of the predicted top-1 stock within the ground-truth
/// return ordering. Averaged over days this is the paper's MRR ("the MRR
/// result of the top-1 stock in a ranking list").
double ReciprocalRankTop1(const Tensor& scores, const Tensor& labels);

/// Mean realized return of the predicted top-k stocks — one day's IRR
/// contribution under the buy-at-t / sell-at-t+1 strategy (§V-B1), assuming
/// capital is split equally across the k picks.
double TopKReturn(const Tensor& scores, const Tensor& labels, int64_t k);

}  // namespace rtgcn::rank

#endif  // RTGCN_RANK_METRICS_H_
